package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"resilience"
	"resilience/internal/sparse"
)

func TestLoadMatrixGrid(t *testing.T) {
	a, err := loadMatrix("", "ci", 6, "")
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows != 36 {
		t.Errorf("grid rows %d", a.Rows)
	}
}

func TestLoadMatrixCatalog(t *testing.T) {
	a, err := loadMatrix("Kuu", "tiny", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows == 0 {
		t.Error("empty matrix")
	}
	if _, err := loadMatrix("nope", "tiny", 0, ""); err == nil {
		t.Error("unknown catalog name accepted")
	}
}

func TestLoadMatrixDefault(t *testing.T) {
	a, err := loadMatrix("", "ci", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows != 48*48 {
		t.Errorf("default rows %d", a.Rows)
	}
}

func TestLoadMatrixMatrixMarket(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.mtx")
	m := resilience.Laplacian2D(4)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sparse.WriteMatrixMarket(f, m); err != nil {
		t.Fatal(err)
	}
	f.Close()
	a, err := loadMatrix("", "ci", 0, path)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows != 16 || a.NNZ() != m.NNZ() {
		t.Errorf("round trip %v", a)
	}
	if _, err := loadMatrix("", "ci", 0, filepath.Join(dir, "missing.mtx")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestPrintReport(t *testing.T) {
	a := resilience.Laplacian2D(12)
	b, _ := resilience.RHS(a)
	rep, err := resilience.Solve(a, b, resilience.SolveOptions{
		Scheme: "CR-M", Ranks: 4, Faults: 2, CkptEvery: 10, Tol: 1e-9,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	printReport(&sb, rep)
	out := sb.String()
	for _, want := range []string{"converged:    true", "iterations:", "faults:       2",
		"checkpoints:", "energy[solve]", "avg power:"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	a := resilience.Laplacian2D(8)
	b, _ := resilience.RHS(a)
	rep, err := resilience.Solve(a, b, resilience.SolveOptions{Ranks: 2, Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := writeJSON(&sb, rep); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"Scheme": "FF"`, `"Converged": true`, `"Energy"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, `"Solution": [`) && strings.Contains(out, "0.9") {
		t.Error("bulky solution vector not stripped")
	}
}

func TestTraceCSVViaSolve(t *testing.T) {
	a := resilience.Laplacian2D(10)
	b, _ := resilience.RHS(a)
	tr := resilience.NewTrace()
	_, err := resilience.Solve(a, b, resilience.SolveOptions{
		Scheme: "LI", Ranks: 2, Faults: 1, Tol: 1e-8, Trace: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tr.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fault,") {
		t.Errorf("trace CSV missing fault event:\n%.300s", sb.String())
	}
}
