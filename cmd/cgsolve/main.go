// Command cgsolve solves one generated SPD system with a chosen recovery
// scheme under injected faults and prints the run report.
//
// Usage:
//
//	cgsolve -matrix Kuu -scale ci -scheme LI-DVFS -ranks 32 -faults 10
//	cgsolve -grid 64 -scheme CR-M -faults 5
//	cgsolve -mm matrix.mtx -scheme RD -mtbf 0.01
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"

	"resilience"
	"resilience/internal/obs"
	"resilience/internal/sparse"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cgsolve: ")

	matrix := flag.String("matrix", "", "Table 3 catalog matrix name (see -catalog)")
	scale := flag.String("scale", "ci", "catalog scale: tiny, ci or paper")
	grid := flag.Int("grid", 0, "use a 5-point stencil on a grid x grid mesh instead")
	mm := flag.String("mm", "", "read the matrix from a Matrix Market file instead")
	scheme := flag.String("scheme", "FF", "recovery scheme (see -schemes)")
	ranks := flag.Int("ranks", 16, "simulated MPI processes")
	faults := flag.Int("faults", 0, "evenly spaced fault count")
	mtbf := flag.Float64("mtbf", 0, "Poisson MTBF in virtual seconds (alternative to -faults)")
	tol := flag.Float64("tol", 1e-12, "CG relative residual tolerance")
	ckpt := flag.Int("ckpt", 0, "fixed checkpoint interval in iterations (CR schemes)")
	overlap := flag.Bool("overlap", false, "overlap halo exchange with interior SpMV (bitwise-identical iterates, different modeled time)")
	sched := flag.String("sched", "auto", "rank scheduler: auto (RES_SCHED env), goroutine, coop (byte-identical results)")
	spmv := flag.String("spmv", "auto", "SpMV kernel layout: auto (RES_SPMV env), csr, sell (byte-identical results)")
	seed := flag.Int64("seed", 1, "deterministic seed")
	asJSON := flag.Bool("json", false, "emit the run report as JSON")
	traceFile := flag.String("trace", "", "write a per-iteration CSV trace to this file")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON timeline (load in Perfetto) to this file")
	metricsFile := flag.String("metrics", "", "write per-rank counters as CSV to this file ('-' for stdout)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile (real time, not virtual) to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	catalog := flag.Bool("catalog", false, "list catalog matrices and exit")
	schemes := flag.Bool("schemes", false, "list schemes and exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	if *catalog {
		for _, n := range resilience.CatalogNames() {
			fmt.Println(n)
		}
		return
	}
	if *schemes {
		for _, n := range resilience.SchemeNames() {
			fmt.Println(n)
		}
		return
	}

	a, err := loadMatrix(*matrix, *scale, *grid, *mm)
	if err != nil {
		log.Fatal(err)
	}
	b, _ := resilience.RHS(a)
	fmt.Printf("system: %v, %d ranks, scheme %s\n", a, *ranks, *scheme)

	opts := resilience.SolveOptions{
		Scheme:    *scheme,
		Ranks:     *ranks,
		Tol:       *tol,
		Faults:    *faults,
		MTBF:      *mtbf,
		CkptEvery: *ckpt,
		Overlap:   *overlap,
		Seed:      *seed,
	}
	if opts.Sched, err = resilience.ParseSched(*sched); err != nil {
		log.Fatal(err)
	}
	if opts.SpMV, err = resilience.ParseSpMV(*spmv); err != nil {
		log.Fatal(err)
	}
	var tr *resilience.Trace
	if *traceFile != "" {
		tr = resilience.NewTrace()
		opts.Trace = tr
	}
	var rec *resilience.Recorder
	if *traceOut != "" || *metricsFile != "" {
		rec = resilience.NewRecorder()
		opts.Observer = rec
		// Segments feed the power counter tracks of the timeline export.
		opts.KeepPowerSegments = opts.KeepPowerSegments || *traceOut != ""
	}
	rep, err := resilience.Solve(a, b, opts)
	if err != nil {
		log.Fatal(err)
	}
	if *traceOut != "" {
		if err := writeFile(*traceOut, func(w io.Writer) error {
			return obs.WriteChromeTrace(w, rec, rep.Meter)
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("timeline: %d spans on %d ranks written to %s (open in Perfetto)\n",
			rec.SpanCount(), rec.Ranks(), *traceOut)
	}
	if *metricsFile != "" {
		if err := writeFile(*metricsFile, func(w io.Writer) error {
			return obs.WriteMetricsCSV(w, rec.Metrics())
		}); err != nil {
			log.Fatal(err)
		}
	}
	if tr != nil {
		f, err := os.Create(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace: %d events written to %s\n", tr.Len(), *traceFile)
	}
	if *asJSON {
		if err := writeJSON(os.Stdout, rep); err != nil {
			log.Fatal(err)
		}
	} else {
		printReport(os.Stdout, rep)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if !rep.Converged {
		pprof.StopCPUProfile()
		os.Exit(2)
	}
}

// writeFile runs emit against the named file, with "-" meaning stdout.
func writeFile(path string, emit func(io.Writer) error) error {
	if path == "-" {
		return emit(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeJSON emits the report without the bulky solution/history vectors.
func writeJSON(w io.Writer, rep *resilience.Report) error {
	slim := *rep
	slim.Solution = nil
	slim.History = nil
	slim.Meter = nil
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&slim)
}

func loadMatrix(name, scale string, grid int, mm string) (*resilience.Matrix, error) {
	switch {
	case mm != "":
		f, err := os.Open(mm)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return sparse.ReadMatrixMarket(f)
	case grid > 0:
		return resilience.Laplacian2D(grid), nil
	case name != "":
		return resilience.CatalogMatrix(name, scale)
	default:
		return resilience.Laplacian2D(48), nil
	}
}

func printReport(w io.Writer, rep *resilience.Report) {
	fmt.Fprintf(w, "converged:    %v (relres %.3g)\n", rep.Converged, rep.RelRes)
	fmt.Fprintf(w, "iterations:   %d (restarts %d)\n", rep.Iters, rep.Restarts)
	fmt.Fprintf(w, "time:         %.6g s (virtual)\n", rep.Time)
	fmt.Fprintf(w, "energy:       %.6g J\n", rep.Energy)
	fmt.Fprintf(w, "avg power:    %.6g W (redundancy x%d)\n", rep.AvgPower, rep.Redundancy)
	fmt.Fprintf(w, "seed:         %d\n", rep.Seed)
	if rep.Checkpoints > 0 {
		fmt.Fprintf(w, "checkpoints:  %d\n", rep.Checkpoints)
	}
	if len(rep.Faults) > 0 {
		fmt.Fprintf(w, "faults:       %d\n", len(rep.Faults))
		for _, f := range rep.Faults {
			fmt.Fprintf(w, "  %v\n", f)
		}
	}
	phases := make([]string, 0, len(rep.EnergyByPhase))
	for ph := range rep.EnergyByPhase {
		phases = append(phases, ph)
	}
	sort.Strings(phases)
	for _, ph := range phases {
		fmt.Fprintf(w, "energy[%s]: %.6g J\n", ph, rep.EnergyByPhase[ph])
	}
}
