// Command benchdiff runs the repository's performance suite through
// testing.Benchmark, writes the results as JSON, and optionally compares
// them against a baseline file, failing (exit 1) on regressions.
//
// Usage:
//
//	benchdiff -out BENCH_1.json
//	benchdiff -out BENCH_2.json -baseline BENCH_1.json -threshold 0.2
//	benchdiff -filter SpMV -artifacts=false
//	benchdiff -list
//
// A benchmark regresses when its ns/op grows by more than the threshold
// fraction over the baseline, or when its allocs/op increase at all (a
// zero-allocation kernel starting to allocate is always a regression,
// whatever the timing noise says).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"resilience"
	"resilience/internal/chaos"
	"resilience/internal/chaos/fleet"
	"resilience/internal/cluster"
	"resilience/internal/platform"
	"resilience/internal/power"
	"resilience/internal/service"
	"resilience/internal/service/cache"
	"resilience/internal/solver"
	"resilience/internal/sparse"
	"resilience/internal/telemetry"
	"resilience/internal/vec"
)

// Schema identifies the JSON layout this command writes.
const Schema = "resilience-benchdiff/1"

// Record is one benchmark's measured cost.
type Record struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// File is the on-disk result set. NumCPU/GoMaxProcs distinguish 1-CPU
// container numbers from multicore runs when diffing trajectories (the
// goroutine scheduler's contention profile differs sharply between
// them); GitDirty flags numbers measured against uncommitted code.
type File struct {
	Schema      string `json:"schema"`
	CreatedUnix int64  `json:"created_unix"`
	NumCPU      int    `json:"num_cpu"`
	GoMaxProcs  int    `json:"go_maxprocs"`
	GitRevision string `json:"git_revision,omitempty"`
	GitDirty    bool   `json:"git_dirty,omitempty"`
	// E2EFig3Seconds is the wall-clock of one fig3 end-to-end run at the
	// given scale, per scheduler mode ("goroutine", "coop"); min of 3.
	E2EFig3Seconds map[string]float64 `json:"e2e_fig3_seconds,omitempty"`
	E2EFig3Scale   string             `json:"e2e_fig3_scale,omitempty"`
	Benchmarks     map[string]Record  `json:"benchmarks"`
}

// gitRevision returns the current commit hash plus whether the tree has
// uncommitted changes ("" and false when git is unavailable).
func gitRevision() (rev string, dirty bool) {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "", false
	}
	rev = strings.TrimSpace(string(out))
	if st, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(bytes.TrimSpace(st)) > 0 {
		dirty = true
	}
	return rev, dirty
}

// Regression is one baseline comparison that exceeded the threshold.
type Regression struct {
	Name   string
	Reason string
}

// Diff compares cur against base. Missing or added benchmarks are not
// regressions (the suite evolves); only measured-vs-measured pairs count.
// toleranceBytes is the allowed absolute growth in bytes/op before a
// regression is flagged (0 means any growth fails).
func Diff(base, cur map[string]Record, threshold float64, toleranceBytes int64) []Regression {
	var regs []Regression
	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b, ok := base[name]
		if !ok {
			continue
		}
		c := cur[name]
		if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+threshold) {
			regs = append(regs, Regression{name, fmt.Sprintf("ns/op %.0f -> %.0f (+%.1f%% > %.0f%%)",
				b.NsPerOp, c.NsPerOp, 100*(c.NsPerOp/b.NsPerOp-1), 100*threshold)})
		}
		if c.AllocsPerOp > b.AllocsPerOp {
			regs = append(regs, Regression{name, fmt.Sprintf("allocs/op %d -> %d",
				b.AllocsPerOp, c.AllocsPerOp)})
		}
		if c.BytesPerOp > b.BytesPerOp+toleranceBytes {
			regs = append(regs, Regression{name, fmt.Sprintf("bytes/op %d -> %d (+%d > %d)",
				b.BytesPerOp, c.BytesPerOp, c.BytesPerOp-b.BytesPerOp, toleranceBytes)})
		}
	}
	return regs
}

// namedBench is one suite entry.
type namedBench struct {
	name string
	fn   func(b *testing.B)
}

// suite assembles the benchmark list: the hot kernels always, plus the
// paper-artifact experiments when artifacts is true.
func suite(scale string, artifacts bool) []namedBench {
	benches := kernelSuite()
	if artifacts {
		for _, r := range resilience.Experiments() {
			id := r.ID
			benches = append(benches, namedBench{
				name: "Experiment/" + id + "@" + scale,
				fn: func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if _, err := resilience.RunExperiment(id, scale); err != nil {
							b.Fatal(err)
						}
					}
				},
			})
		}
	}
	return benches
}

func kernelSuite() []namedBench {
	const n = 4096
	mkVec := func(seed float64) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = seed + float64(i%17)/17
		}
		return v
	}
	return []namedBench{
		{"SpMV/Laplacian2D-128", func(b *testing.B) {
			a := resilience.Laplacian2D(128)
			x, y := make([]float64, a.Rows), make([]float64, a.Rows)
			for i := range x {
				x[i] = float64(i % 31)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.MulVec(y, x)
			}
		}},
		{"SpMVTransAdd/Laplacian2D-128", func(b *testing.B) {
			a := resilience.Laplacian2D(128)
			x, y := make([]float64, a.Rows), make([]float64, a.Rows)
			for i := range x {
				x[i] = float64(i % 31)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.MulTransVecAdd(y, x)
			}
		}},
		{"Dot/4096", func(b *testing.B) {
			x, y := mkVec(1), mkVec(2)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink = vec.Dot(x, y)
			}
		}},
		{"Axpy/4096", func(b *testing.B) {
			x, y := mkVec(1), mkVec(2)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vec.Axpy(1e-9, x, y)
			}
		}},
		{"DotAxpy/4096", func(b *testing.B) {
			x, y, z := mkVec(1), mkVec(2), mkVec(3)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink = vec.DotAxpy(1e-9, x, y, z)
			}
		}},
		{"AxpyDot/4096", func(b *testing.B) {
			x, y := mkVec(1), mkVec(2)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink = vec.AxpyDot(1e-9, x, y)
			}
		}},
		{"AllreduceScalar/p4", func(b *testing.B) {
			b.ReportAllocs()
			_, err := cluster.Run(4, platform.Default(), power.NewMeter(false), func(c *cluster.Comm) error {
				for i := 0; i < b.N; i++ {
					c.AllreduceScalarSum(float64(c.Rank()))
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}},
		{"HaloExchange/p4-g32", func(b *testing.B) {
			a := resilience.Laplacian2D(32)
			const ranks = 4
			part := sparse.NewPartition(a.Rows, ranks)
			b.ReportAllocs()
			b.ResetTimer()
			_, err := cluster.Run(ranks, platform.Default(), power.NewMeter(false), func(c *cluster.Comm) error {
				op := solver.NewLocalOp(c, a, part)
				x := make([]float64, op.N)
				for i := range x {
					x[i] = float64(i % 13)
				}
				for i := 0; i < b.N; i++ {
					op.GatherHalo(c, x)
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}},
		{"MulVecDistFused/p4-g32", func(b *testing.B) {
			benchMulVecDist(b, false)
		}},
		{"MulVecDistOverlap/p4-g32", func(b *testing.B) {
			benchMulVecDist(b, true)
		}},
		// Solve-service cache hot paths. The hit, miss, and join paths
		// run once per request on the daemon; all three are gated at
		// 0 allocs/op (a cache front that allocates per lookup would cost
		// more than it saves at production request rates).
		{"CacheGetHit/1024x16", func(b *testing.B) {
			c := cache.New[[]byte](1024, 16)
			body := []byte(`{"kind":"scenario","iters":42}`)
			for i := 0; i < 64; i++ {
				c.Put("j1|scenario|-grid 8 -seed "+fmt.Sprint(i), body)
			}
			key := "j1|scenario|-grid 8 -seed 7"
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := c.Get(key); !ok {
					b.Fatal("hit path missed")
				}
			}
		}},
		{"CacheGetMiss/1024x16", func(b *testing.B) {
			c := cache.New[[]byte](1024, 16)
			c.Put("resident", []byte("x"))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := c.Get("j1|scenario|-grid 9 -seed 12345"); ok {
					b.Fatal("miss path hit")
				}
			}
		}},
		{"SingleflightJoin/serial", func(b *testing.B) {
			g := cache.NewGroup[int]()
			fn := func() (int, error) { return 42, nil }
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if v, err, _ := g.Do("k", fn); v != 42 || err != nil {
					b.Fatal("flight failed")
				}
			}
		}},
		{"CanonicalEncode/scenario", func(b *testing.B) {
			req := service.JobRequest{Scenario: "-grid 8 -ranks 4 -scheme CR-M -tol 1e-10 -ckpt 5 -seed 7 -faults SWO@5:r1,SNF@6:r0"}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				key, ok, err := service.CanonicalKey(req)
				if !ok || err != nil || key == "" {
					b.Fatal("bad key")
				}
			}
		}},
		// Telemetry hot paths. A histogram sample lands on every finished
		// job and a span pair wraps every request stage; both are gated at
		// 0 allocs/op so the metrics plane can never perturb the latencies
		// it reports.
		{"HistogramRecord/1", func(b *testing.B) {
			var h telemetry.Histogram
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.Record(float64(i&1023) * 1e-4)
			}
		}},
		{"SpanStartEnd/1", func(b *testing.B) {
			tr := telemetry.NewTracer(4096)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sp := tr.Start("solve", "r-bench-000001")
				sp.End()
			}
		}},
		// ClusterStep is the scheduler acceptance benchmark: one
		// bidirectional ring halo exchange plus a scalar allreduce per op
		// at p=16 — the communication skeleton of a distributed CG
		// iteration with the numerics stripped out, so the goroutine/coop
		// pair isolates pure scheduling overhead.
		{"ClusterStep/p16-goroutine", func(b *testing.B) {
			benchClusterStep(b, cluster.SchedGoroutine, 16)
		}},
		{"ClusterStep/p16-coop", func(b *testing.B) {
			benchClusterStep(b, cluster.SchedCoop, 16)
		}},
		{"CollectiveBarrier/p16-goroutine", func(b *testing.B) {
			benchBarrier(b, cluster.SchedGoroutine, 16)
		}},
		{"CollectiveBarrier/p16-coop", func(b *testing.B) {
			benchBarrier(b, cluster.SchedCoop, 16)
		}},
		// SpMVBlocked mirrors the CSR SpMV rows with the SELL-C-σ layout
		// so a diff of the paired rows reads as blocked-vs-CSR on the
		// same matrix (bitwise-identical products by construction). The
		// g64 pair is the ci solve size; g128 is the stress size.
		{"SpMV/Laplacian2D-64", func(b *testing.B) {
			benchSpMV(b, 64, false)
		}},
		{"SpMVBlocked/Laplacian2D-64", func(b *testing.B) {
			benchSpMV(b, 64, true)
		}},
		{"SpMVBlocked/Laplacian2D-128", func(b *testing.B) {
			benchSpMV(b, 128, true)
		}},
		{"CGIteration/p4-g32", func(b *testing.B) {
			a := resilience.Laplacian2D(32)
			rhs, _ := resilience.RHS(a)
			const ranks = 4
			part := sparse.NewPartition(a.Rows, ranks)
			b.ReportAllocs()
			b.ResetTimer()
			_, err := cluster.Run(ranks, platform.Default(), power.NewMeter(false), func(c *cluster.Comm) error {
				op := solver.NewLocalOp(c, a, part)
				bl := make([]float64, op.N)
				copy(bl, part.Slice(rhs, c.Rank()))
				x := make([]float64, op.N)
				r := make([]float64, op.N)
				p := make([]float64, op.N)
				q := make([]float64, op.N)
				restart := func() float64 {
					vec.Zero(x)
					op.MulVecDist(c, r, x)
					vec.Sub(r, bl, r)
					copy(p, r)
					return c.AllreduceScalarSum(vec.Dot(r, r))
				}
				rho := restart()
				for i := 0; i < b.N; i++ {
					if i%50 == 49 {
						rho = restart()
					}
					op.MulVecDist(c, q, p)
					pq := c.AllreduceScalarSum(vec.Dot(p, q))
					alpha := rho / pq
					vec.Axpy(alpha, p, x)
					rhoNew := c.AllreduceScalarSum(vec.AxpyDot(-alpha, q, r))
					vec.Xpby(r, rhoNew/rho, p)
					rho = rhoNew
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}},
		// FleetCampaign drives the chaos-fleet driver end to end against
		// the in-process oracle: one op is an 8-scenario campaign through
		// generation, sharded verdict evaluation, and counting, so
		// ns/op ÷ 8 is the per-scenario fleet-throughput floor with the
		// transport stripped out (the HTTP path adds codec + router cost
		// on top of this).
		{"FleetCampaign/oracle-n8", func(b *testing.B) {
			opts := fleet.Options{
				Campaign: chaos.Options{N: 8, Seed: 1},
				Batch:    4,
				Workers:  2,
			}
			ev := fleet.NewOracle("", 2)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := fleet.Run(context.Background(), opts, ev)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Failed > 0 {
					b.Fatalf("benchmark campaign has %d failing scenarios", rep.Failed)
				}
			}
		}},
	}
}

// benchMulVecDist measures the distributed SpMV on the fused or
// overlapped path; both compute bitwise-identical products, so any
// wall-clock gap is pure kernel-dispatch overhead.
func benchMulVecDist(b *testing.B, overlap bool) {
	a := resilience.Laplacian2D(32)
	const ranks = 4
	part := sparse.NewPartition(a.Rows, ranks)
	b.ReportAllocs()
	b.ResetTimer()
	_, err := cluster.Run(ranks, platform.Default(), power.NewMeter(false), func(c *cluster.Comm) error {
		op := solver.NewLocalOp(c, a, part)
		op.SetOverlap(overlap)
		x := make([]float64, op.N)
		y := make([]float64, op.N)
		for i := range x {
			x[i] = float64(i % 13)
		}
		for i := 0; i < b.N; i++ {
			op.MulVecDist(c, y, x)
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// benchSpMV measures one SpMV on a grid×grid 5-point stencil in the CSR
// or SELL-C-σ layout.
func benchSpMV(b *testing.B, grid int, blocked bool) {
	a := resilience.Laplacian2D(grid)
	var s *sparse.SELL
	if blocked {
		s = sparse.NewSELLFromCSR(a, sparse.DefaultSELLC, sparse.DefaultSELLSigma)
	}
	x, y := make([]float64, a.Rows), make([]float64, a.Rows)
	for i := range x {
		x[i] = float64(i % 31)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if blocked {
			s.MulVec(y, x)
		} else {
			a.MulVec(y, x)
		}
	}
}

// benchClusterStep drives p ranks through a bidirectional ring exchange
// (8-float payloads) followed by a scalar allreduce, under an explicit
// scheduler mode.
func benchClusterStep(b *testing.B, mode cluster.SchedMode, p int) {
	b.ReportAllocs()
	rt := cluster.NewRuntimeOpts(p, platform.Default(), power.NewMeter(false), cluster.Options{Sched: mode})
	b.ResetTimer()
	_, err := rt.Run(func(c *cluster.Comm) error {
		next, prev := (c.Rank()+1)%p, (c.Rank()+p-1)%p
		buf := make([]float64, 8)
		got := make([]float64, 8)
		for i := range buf {
			buf[i] = float64(c.Rank()) + float64(i)/8
		}
		for i := 0; i < b.N; i++ {
			c.Send(next, 1, buf)
			c.RecvInto(prev, 1, got)
			c.Send(prev, 2, buf)
			c.RecvInto(next, 2, got)
			c.AllreduceScalarSum(got[0])
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// benchBarrier measures one full barrier across p ranks per op.
func benchBarrier(b *testing.B, mode cluster.SchedMode, p int) {
	b.ReportAllocs()
	rt := cluster.NewRuntimeOpts(p, platform.Default(), power.NewMeter(false), cluster.Options{Sched: mode})
	b.ResetTimer()
	_, err := rt.Run(func(c *cluster.Comm) error {
		for i := 0; i < b.N; i++ {
			c.Barrier()
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// measureE2E times the fig3 experiment end to end under each scheduler
// mode (min of 3 runs apiece) — the headline wall-clock number, as
// opposed to the microbenchmarks' per-op costs.
func measureE2E(scale string) map[string]float64 {
	out := make(map[string]float64, 2)
	for _, mode := range []resilience.SchedMode{cluster.SchedGoroutine, cluster.SchedCoop} {
		name := mode.String()
		best := 0.0
		for i := 0; i < 3; i++ {
			start := time.Now()
			if _, err := resilience.RunExperimentOpts("fig3", scale,
				resilience.ExperimentOptions{Sched: mode}); err != nil {
				fmt.Fprintf(os.Stderr, "e2e fig3 sched=%s: %v\n", name, err)
				return nil
			}
			if d := time.Since(start).Seconds(); best == 0 || d < best {
				best = d
			}
		}
		fmt.Fprintf(os.Stderr, "e2e fig3@%s sched=%-9s %8.3fs (min of 3)\n", scale, name, best)
		out[name] = best
	}
	return out
}

// sink defeats dead-code elimination of pure kernels.
var sink float64

// runSuite executes the matching benchmarks and collects records.
func runSuite(benches []namedBench, filter string) map[string]Record {
	out := make(map[string]Record, len(benches))
	for _, nb := range benches {
		if filter != "" && !strings.Contains(nb.name, filter) {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %-32s ", nb.name)
		r := testing.Benchmark(nb.fn)
		rec := Record{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		fmt.Fprintf(os.Stderr, "%12.0f ns/op %8d B/op %6d allocs/op\n",
			rec.NsPerOp, rec.BytesPerOp, rec.AllocsPerOp)
		out[nb.name] = rec
	}
	return out
}

func readBaseline(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if f.Schema != Schema {
		return nil, fmt.Errorf("%s: unexpected schema %q (want %q)", path, f.Schema, Schema)
	}
	return &f, nil
}

func writeResults(path string, recs map[string]Record, e2e map[string]float64, e2eScale string) error {
	rev, dirty := gitRevision()
	f := File{
		Schema:         Schema,
		CreatedUnix:    time.Now().Unix(),
		NumCPU:         runtime.NumCPU(),
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		GitRevision:    rev,
		GitDirty:       dirty,
		E2EFig3Seconds: e2e,
		E2EFig3Scale:   e2eScale,
		Benchmarks:     recs,
	}
	if e2e == nil {
		f.E2EFig3Scale = ""
	}
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	out := flag.String("out", "BENCH_1.json", "write results to this JSON file ('' to skip)")
	baseline := flag.String("baseline", "", "compare against this earlier results file")
	threshold := flag.Float64("threshold", 0.2, "allowed fractional ns/op growth before a regression is flagged")
	toleranceBytes := flag.Int64("tolerance-bytes", 0, "allowed absolute bytes/op growth before a regression is flagged")
	filter := flag.String("filter", "", "only run benchmarks whose name contains this substring")
	scale := flag.String("scale", "tiny", "workload scale for -artifacts runs: tiny, ci or paper")
	artifacts := flag.Bool("artifacts", false, "also benchmark the paper-artifact experiment runners")
	e2e := flag.Bool("e2e", true, "record the fig3 end-to-end wall-clock per scheduler mode in the result metadata")
	e2eScale := flag.String("e2e-scale", "ci", "workload scale of the -e2e measurement")
	list := flag.Bool("list", false, "list benchmark names and exit")
	flag.Parse()

	benches := suite(*scale, *artifacts)
	if *list {
		for _, nb := range benches {
			fmt.Println(nb.name)
		}
		return
	}
	if *threshold < 0 {
		fmt.Fprintf(os.Stderr, "-threshold must be >= 0, got %g\n", *threshold)
		os.Exit(2)
	}
	if *toleranceBytes < 0 {
		fmt.Fprintf(os.Stderr, "-tolerance-bytes must be >= 0, got %d\n", *toleranceBytes)
		os.Exit(2)
	}

	// Validate the baseline up front so a bad file fails before the suite
	// spends minutes running.
	var base *File
	if *baseline != "" {
		var err error
		base, err = readBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(2)
		}
	}

	recs := runSuite(benches, *filter)
	if len(recs) == 0 {
		fmt.Fprintf(os.Stderr, "no benchmarks match filter %q\n", *filter)
		os.Exit(2)
	}
	var e2eSecs map[string]float64
	if *e2e && *out != "" && *filter == "" {
		e2eSecs = measureE2E(*e2eScale)
	}
	if *out != "" {
		if err := writeResults(*out, recs, e2eSecs, *e2eScale); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *out, err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks)\n", *out, len(recs))
	}
	if base != nil {
		regs := Diff(base.Benchmarks, recs, *threshold, *toleranceBytes)
		if len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "REGRESSION %s: %s\n", r.Name, r.Reason)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "no regressions vs %s (threshold %.0f%%)\n", *baseline, 100**threshold)
	}
}
