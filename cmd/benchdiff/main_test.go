package main

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestDiffThreshold(t *testing.T) {
	base := map[string]Record{
		"SpMV":      {NsPerOp: 1000, AllocsPerOp: 0},
		"CGIter":    {NsPerOp: 20000, AllocsPerOp: 0},
		"Allreduce": {NsPerOp: 1200, AllocsPerOp: 0},
	}
	// Within threshold: 15% slower is fine at 20%.
	cur := map[string]Record{
		"SpMV":      {NsPerOp: 1150, AllocsPerOp: 0},
		"CGIter":    {NsPerOp: 19000, AllocsPerOp: 0},
		"Allreduce": {NsPerOp: 1200, AllocsPerOp: 0},
	}
	if regs := Diff(base, cur, 0.2, 0); len(regs) != 0 {
		t.Errorf("within-threshold diff flagged regressions: %v", regs)
	}
	// 30% slower regresses; a benchmark missing from the baseline does not.
	cur["SpMV"] = Record{NsPerOp: 1300}
	cur["NewBench"] = Record{NsPerOp: 1}
	regs := Diff(base, cur, 0.2, 0)
	if len(regs) != 1 || regs[0].Name != "SpMV" {
		t.Errorf("want exactly one SpMV ns/op regression, got %v", regs)
	}
	// A zero-allocation kernel starting to allocate always regresses, even
	// when faster.
	cur["SpMV"] = Record{NsPerOp: 500, AllocsPerOp: 2}
	regs = Diff(base, cur, 0.2, 0)
	if len(regs) != 1 || regs[0].Name != "SpMV" {
		t.Errorf("want exactly one SpMV allocs regression, got %v", regs)
	}
}

func TestDiffToleranceBytes(t *testing.T) {
	base := map[string]Record{
		"SpMV": {NsPerOp: 1000, BytesPerOp: 100},
	}
	// Growth within the tolerance passes.
	cur := map[string]Record{
		"SpMV": {NsPerOp: 1000, BytesPerOp: 160},
	}
	if regs := Diff(base, cur, 0.2, 64); len(regs) != 0 {
		t.Errorf("within-tolerance bytes growth flagged: %v", regs)
	}
	// Growth beyond the tolerance regresses even at identical speed.
	cur["SpMV"] = Record{NsPerOp: 1000, BytesPerOp: 165}
	regs := Diff(base, cur, 0.2, 64)
	if len(regs) != 1 || regs[0].Name != "SpMV" {
		t.Errorf("want exactly one SpMV bytes regression, got %v", regs)
	}
	// Zero tolerance: any growth fails; shrinking never does.
	cur["SpMV"] = Record{NsPerOp: 1000, BytesPerOp: 101}
	if regs := Diff(base, cur, 0.2, 0); len(regs) != 1 {
		t.Errorf("want bytes regression at zero tolerance, got %v", regs)
	}
	cur["SpMV"] = Record{NsPerOp: 1000, BytesPerOp: 50}
	if regs := Diff(base, cur, 0.2, 0); len(regs) != 0 {
		t.Errorf("bytes shrink flagged: %v", regs)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	recs := map[string]Record{
		"SpMV/Laplacian2D-128": {NsPerOp: 136197.25, AllocsPerOp: 0, BytesPerOp: 0},
		"CGIteration/p4-g32":   {NsPerOp: 18649, AllocsPerOp: 0, BytesPerOp: 4},
	}
	e2e := map[string]float64{"goroutine": 1.25, "coop": 0.75}
	path := filepath.Join(t.TempDir(), "BENCH_1.json")
	if err := writeResults(path, recs, e2e, "ci"); err != nil {
		t.Fatal(err)
	}
	f, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Schema != Schema {
		t.Errorf("schema = %q, want %q", f.Schema, Schema)
	}
	if f.GoMaxProcs < 1 || f.NumCPU < 1 || f.CreatedUnix == 0 {
		t.Errorf("metadata not populated: %+v", f)
	}
	if !reflect.DeepEqual(f.E2EFig3Seconds, e2e) || f.E2EFig3Scale != "ci" {
		t.Errorf("e2e metadata mismatch: %+v scale=%q", f.E2EFig3Seconds, f.E2EFig3Scale)
	}
	if !reflect.DeepEqual(f.Benchmarks, recs) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", f.Benchmarks, recs)
	}
}

func TestReadBaselineRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema":"other/9","benchmarks":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readBaseline(path); err == nil {
		t.Error("wrong schema accepted")
	}
}
