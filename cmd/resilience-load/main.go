// Command resilience-load replays a seeded job stream against a running
// resilienced (or a resilience-router fronting a fleet) and proves the
// service's determinism contract: every response body must be
// byte-identical to running the same job offline through
// service.RunJob — whatever the daemon's worker count, queue order,
// concurrency, or cache state.
//
// An optional burst phase first floods the queue with sleep jobs to
// exercise explicit backpressure: it demands at least one 429, honors
// the Retry-After hint, and requires every burst job to complete on
// retry. The scenario stream itself is drawn from the chaos generator,
// so the same -seed/-n replays the same mixed workload anywhere.
//
// An optional duplicate-heavy phase (-dup-jobs) then replays a
// zipf-skewed stream over a small set of unique jobs: every response is
// still byte-compared against the local oracle, and the target's cache
// counters must show a hit rate of at least -min-hit-rate across the
// phase — the end-to-end proof that the content-addressed cache both
// fires and never changes a single byte.
//
//	resilience-load -addr http://127.0.0.1:8912 -n 24 -c 8 -seed 1 -burst 8
//	resilience-load -addr http://127.0.0.1:8910 -n 0 -dup-jobs 20000 -dup-unique 96 -min-hit-rate 0.5
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"resilience/internal/chaos"
	"resilience/internal/service"
)

// options carries every run parameter; tests fill it directly.
type options struct {
	addr      string
	n         int
	c         int
	seed      int64
	maxFaults int
	burst     int
	sleepMs   int
	timeoutMs int

	// Duplicate-heavy phase: dupJobs requests drawn zipf-skewed from
	// dupUnique distinct jobs; the target's cache hit rate over the
	// phase must reach minHitRate.
	dupJobs    int
	dupUnique  int
	dupZipf    float64
	minHitRate float64
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "http://127.0.0.1:8912", "resilienced or resilience-router base URL")
	flag.IntVar(&o.n, "n", 24, "number of scenario jobs in the oracle stream")
	flag.IntVar(&o.c, "c", 4, "concurrent submitters")
	flag.Int64Var(&o.seed, "seed", 1, "stream seed (scenario i derives seed+i*stride)")
	flag.IntVar(&o.maxFaults, "max-faults", 3, "faults per scenario drawn from 0..k")
	flag.IntVar(&o.burst, "burst", 0, "sleep jobs to flood the queue with first (0: skip the backpressure phase)")
	flag.IntVar(&o.sleepMs, "sleep-ms", 300, "duration of each burst sleep job")
	flag.IntVar(&o.timeoutMs, "timeout-ms", 0, "per-job timeout_ms sent with each request (0: server default)")
	flag.IntVar(&o.dupJobs, "dup-jobs", 0, "requests in the duplicate-heavy phase (0: skip)")
	flag.IntVar(&o.dupUnique, "dup-unique", 96, "distinct jobs the duplicate stream draws from")
	flag.Float64Var(&o.dupZipf, "dup-zipf", 1.2, "zipf skew of the duplicate stream (>1; higher = hotter head)")
	flag.Float64Var(&o.minHitRate, "min-hit-rate", 0.5, "required cache hit rate across the duplicate phase")
	flag.Parse()
	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(o options, out io.Writer) error {
	if o.c < 1 {
		o.c = 1
	}
	client := &http.Client{Timeout: 5 * time.Minute}

	if o.burst > 0 {
		rejected, err := runBurst(client, o.addr, o.burst, o.sleepMs, out)
		if err != nil {
			return err
		}
		if rejected == 0 {
			return fmt.Errorf("resilience-load: burst of %d sleep jobs saw no 429 — queue never filled; shrink -workers/-queue on the daemon or raise -burst", o.burst)
		}
	}

	if o.n > 0 {
		if err := runStream(client, o, out); err != nil {
			return err
		}
	}

	if o.dupJobs > 0 {
		if err := runDupPhase(client, o, out); err != nil {
			return err
		}
	}
	return nil
}

// runStream replays the seeded scenario stream, comparing every
// response byte-for-byte against the local oracle.
func runStream(client *http.Client, o options, out io.Writer) error {
	start := time.Now()
	var mismatches, failures atomic.Int64
	var retries atomic.Int64
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < o.c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				// chaos.ScenarioAt is the campaign-wide generation path:
				// scenario i here equals scenario i of `chaos -seed S` and of
				// a chaos-fleet campaign with the same seed.
				s := chaos.ScenarioAt(chaos.Options{Seed: o.seed, MaxFaults: o.maxFaults}, i)
				req := service.JobRequest{Scenario: s.Args(), TimeoutMs: o.timeoutMs}
				oracleRes, _, err := service.RunJob(context.Background(), req)
				if err != nil {
					failures.Add(1)
					fmt.Fprintf(out, "job %d: oracle failed: %v\n", i, err)
					continue
				}
				want, err := json.Marshal(oracleRes)
				if err != nil {
					failures.Add(1)
					continue
				}
				// Deterministic request IDs: the same -seed names the same
				// jobs, so a failure's ID can be found again on replay.
				reqID := fmt.Sprintf("load-s%d-job-%d", o.seed, i)
				code, got, r, ec, err := postRetry(client, o.addr, req, reqID)
				retries.Add(int64(r))
				if err != nil || code != http.StatusOK {
					failures.Add(1)
					fmt.Fprintf(out, "job %d: status %d err %v %s: %s\n", i, code, err, ec, got)
					continue
				}
				if !bytes.Equal(got, want) {
					mismatches.Add(1)
					fmt.Fprintf(out, "job %d: response differs from oracle (%s)\n  scenario: %s\n  got:  %s\n  want: %s\n", i, ec, s.Args(), got, want)
				}
			}
		}()
	}
	for i := 0; i < o.n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	fmt.Fprintf(out, "resilience-load: %d scenario jobs, %d submitters, %d retries after 429, %d mismatches, %d failures, %.2fs\n",
		o.n, o.c, retries.Load(), mismatches.Load(), failures.Load(), time.Since(start).Seconds())
	if m, f := mismatches.Load(), failures.Load(); m > 0 || f > 0 {
		return fmt.Errorf("resilience-load: %d mismatches, %d failures", m, f)
	}
	return nil
}

// runDupPhase replays a zipf-skewed duplicate-heavy stream over a small
// set of unique jobs. Each unique job's oracle body is computed locally
// exactly once; every one of the dupJobs responses must match it
// byte-for-byte, and the target's cache counters (scraped from /metrics
// before and after) must show a hit rate of at least minHitRate.
func runDupPhase(client *http.Client, o options, out io.Writer) error {
	if o.dupUnique < 1 {
		o.dupUnique = 1
	}
	start := time.Now()

	// Unique job set with locally-computed oracle bodies. Seeds continue
	// past the stream phase's range so the two phases stay independent.
	uniq := make([]service.JobRequest, o.dupUnique)
	oracle := make([][]byte, o.dupUnique)
	for i := range uniq {
		s := chaos.ScenarioAt(chaos.Options{Seed: o.seed, MaxFaults: o.maxFaults}, o.n+i)
		uniq[i] = service.JobRequest{Scenario: s.Args(), TimeoutMs: o.timeoutMs}
		res, _, err := service.RunJob(context.Background(), uniq[i])
		if err != nil {
			return fmt.Errorf("resilience-load: dup oracle %d: %w", i, err)
		}
		oracle[i], err = json.Marshal(res)
		if err != nil {
			return err
		}
	}

	hits0, misses0, err := scrapeCacheCounters(client, o.addr)
	if err != nil {
		return fmt.Errorf("resilience-load: pre-phase metrics scrape: %w", err)
	}

	// The whole index stream is drawn up front from one generator, so
	// the workload is deterministic regardless of submitter scheduling.
	zr := rand.New(rand.NewSource(o.seed ^ 0x5ca1ab1e))
	zipf := rand.NewZipf(zr, o.dupZipf, 1, uint64(o.dupUnique-1))
	if zipf == nil {
		return fmt.Errorf("resilience-load: bad zipf skew %v (need > 1)", o.dupZipf)
	}
	stream := make([]int, o.dupJobs)
	for i := range stream {
		stream[i] = int(zipf.Uint64())
	}

	var mismatches, failures, retries atomic.Int64
	jobs := make(chan [2]int) // [stream position, unique-job index]
	var wg sync.WaitGroup
	for w := 0; w < o.c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				pos, idx := j[0], j[1]
				reqID := fmt.Sprintf("load-s%d-dup-%d", o.seed, pos)
				code, got, r, ec, err := postRetry(client, o.addr, uniq[idx], reqID)
				retries.Add(int64(r))
				if err != nil || code != http.StatusOK {
					failures.Add(1)
					fmt.Fprintf(out, "dup job (uniq %d): status %d err %v %s: %s\n", idx, code, err, ec, got)
					continue
				}
				if !bytes.Equal(got, oracle[idx]) {
					mismatches.Add(1)
					fmt.Fprintf(out, "dup job (uniq %d): response differs from oracle (%s)\n  scenario: %s\n  got:  %s\n  want: %s\n",
						idx, ec, uniq[idx].Scenario, got, oracle[idx])
				}
			}
		}()
	}
	for pos, idx := range stream {
		jobs <- [2]int{pos, idx}
	}
	close(jobs)
	wg.Wait()

	hits1, misses1, err := scrapeCacheCounters(client, o.addr)
	if err != nil {
		return fmt.Errorf("resilience-load: post-phase metrics scrape: %w", err)
	}
	dh, dm := hits1-hits0, misses1-misses0
	lookups := dh + dm
	rate := 0.0
	if lookups > 0 {
		rate = dh / lookups
	}
	fmt.Fprintf(out, "resilience-load: dup phase %d jobs over %d uniques (zipf %.2f), cache hit rate %.3f (floor %.2f), %d retries after 429, %d mismatches, %d failures, %.2fs\n",
		o.dupJobs, o.dupUnique, o.dupZipf, rate, o.minHitRate, retries.Load(), mismatches.Load(), failures.Load(), time.Since(start).Seconds())
	if m, f := mismatches.Load(), failures.Load(); m > 0 || f > 0 {
		return fmt.Errorf("resilience-load: dup phase: %d mismatches, %d failures", m, f)
	}
	if lookups <= 0 {
		return fmt.Errorf("resilience-load: dup phase: cache counters never moved (%v hits, %v misses) — is the cache disabled?", dh, dm)
	}
	if rate < o.minHitRate {
		return fmt.Errorf("resilience-load: dup phase: cache hit rate %.3f below floor %.2f", rate, o.minHitRate)
	}
	return nil
}

// scrapeCacheCounters pulls the target's /metrics and sums the
// unlabeled counters whose names end in cache_hits_total and
// cache_misses_total — matching both a bare resilienced and a
// resilience-router's fleet aggregate.
func scrapeCacheCounters(client *http.Client, addr string) (hits, misses float64, err error) {
	resp, err := client.Get(addr + "/metrics")
	if err != nil {
		return 0, 0, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("metrics status %d", resp.StatusCode)
	}
	for _, line := range strings.Split(string(body), "\n") {
		name, rest, ok := strings.Cut(line, " ")
		if !ok || strings.Contains(name, "{") {
			continue
		}
		v, perr := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if perr != nil {
			continue
		}
		switch {
		case strings.HasSuffix(name, "cache_hits_total"):
			hits += v
		case strings.HasSuffix(name, "cache_misses_total"):
			misses += v
		}
	}
	return hits, misses, nil
}

// runBurst floods the queue with sleep jobs and reports how many were
// rejected with 429 on first contact; each one must still complete OK
// after honoring Retry-After.
func runBurst(client *http.Client, addr string, burst, sleepMs int, out io.Writer) (int, error) {
	var rejected, failed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := service.JobRequest{SleepMs: sleepMs}
			code, body, retries, ec, err := postRetry(client, addr, req, fmt.Sprintf("load-burst-%d", i))
			if retries > 0 {
				rejected.Add(1)
			}
			if err != nil || code != http.StatusOK {
				failed.Add(1)
				fmt.Fprintf(out, "burst job: status %d err %v %s: %s\n", code, err, ec, body)
			}
		}(i)
	}
	wg.Wait()
	fmt.Fprintf(out, "resilience-load: burst %d sleep jobs, %d hit queue-full and retried to completion\n",
		burst, rejected.Load())
	if f := failed.Load(); f > 0 {
		return int(rejected.Load()), fmt.Errorf("resilience-load: %d burst jobs failed", f)
	}
	return int(rejected.Load()), nil
}

// echo carries the telemetry headers the server answered with: the
// echoed X-Request-Id (which names the request in server-side spans and
// flight-recorder dumps) and the X-Cache marker. Failure and mismatch
// logs quote both, so a bad response can be chased through the fleet.
type echo struct {
	reqID string
	cache string
}

// String renders the echo for failure logs.
func (e echo) String() string {
	cache := e.cache
	if cache == "" {
		cache = "-"
	}
	reqID := e.reqID
	if reqID == "" {
		reqID = "-"
	}
	return "req_id=" + reqID + " x_cache=" + cache
}

// postRetry submits one job under the given X-Request-Id, retrying on
// 429 for as long as the server advertises Retry-After (capped, bounded
// attempts). Returns the final status, body, how many 429s were
// absorbed, and the echoed telemetry headers.
func postRetry(client *http.Client, addr string, req service.JobRequest, reqID string) (int, []byte, int, echo, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, nil, 0, echo{}, err
	}
	retries := 0
	var ec echo
	for attempt := 0; attempt < 200; attempt++ {
		hr, err := http.NewRequest(http.MethodPost, addr+"/solve", bytes.NewReader(body))
		if err != nil {
			return 0, nil, retries, ec, err
		}
		hr.Header.Set("Content-Type", "application/json")
		hr.Header.Set("X-Request-Id", reqID)
		resp, err := client.Do(hr)
		if err != nil {
			return 0, nil, retries, ec, err
		}
		ec = echo{reqID: resp.Header.Get("X-Request-Id"), cache: resp.Header.Get("X-Cache")}
		got, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return resp.StatusCode, nil, retries, ec, err
		}
		if resp.StatusCode != http.StatusTooManyRequests {
			if ec.reqID != "" && ec.reqID != reqID {
				return resp.StatusCode, got, retries, ec,
					fmt.Errorf("resilience-load: sent X-Request-Id %s but server echoed %s", reqID, ec.reqID)
			}
			return resp.StatusCode, got, retries, ec, nil
		}
		retries++
		wait := 50 * time.Millisecond
		if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
			wait = time.Duration(s) * time.Second
		}
		if wait > 2*time.Second {
			wait = 2 * time.Second
		}
		time.Sleep(wait)
	}
	return http.StatusTooManyRequests, nil, retries, ec, fmt.Errorf("resilience-load: still 429 after %d retries", retries)
}
