// Command resilience-load replays a seeded job stream against a running
// resilienced and proves the service's determinism contract: every
// response body must be byte-identical to running the same job offline
// through service.RunJob — whatever the daemon's worker count, queue
// order, or concurrency.
//
// An optional burst phase first floods the queue with sleep jobs to
// exercise explicit backpressure: it demands at least one 429, honors
// the Retry-After hint, and requires every burst job to complete on
// retry. The scenario stream itself is drawn from the chaos generator,
// so the same -seed/-n replays the same mixed workload anywhere.
//
//	resilience-load -addr http://127.0.0.1:8912 -n 24 -c 8 -seed 1 -burst 8
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"resilience/internal/chaos"
	"resilience/internal/service"
)

// seedStride matches the chaos campaign's per-scenario seed derivation
// (the 32-bit golden ratio), so scenario i here equals scenario i of
// `chaos -seed S`.
const seedStride = 0x9E3779B9

func main() {
	var (
		addr      = flag.String("addr", "http://127.0.0.1:8912", "resilienced base URL")
		n         = flag.Int("n", 24, "number of scenario jobs")
		c         = flag.Int("c", 4, "concurrent submitters")
		seed      = flag.Int64("seed", 1, "stream seed (scenario i derives seed+i*stride)")
		maxFaults = flag.Int("max-faults", 3, "faults per scenario drawn from 0..k")
		burst     = flag.Int("burst", 0, "sleep jobs to flood the queue with first (0: skip the backpressure phase)")
		sleepMs   = flag.Int("sleep-ms", 300, "duration of each burst sleep job")
		timeoutMs = flag.Int("timeout-ms", 0, "per-job timeout_ms sent with each request (0: server default)")
	)
	flag.Parse()
	if err := run(*addr, *n, *c, *seed, *maxFaults, *burst, *sleepMs, *timeoutMs, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(addr string, n, c int, seed int64, maxFaults, burst, sleepMs, timeoutMs int, out io.Writer) error {
	if c < 1 {
		c = 1
	}
	client := &http.Client{Timeout: 5 * time.Minute}

	if burst > 0 {
		rejected, err := runBurst(client, addr, burst, sleepMs, out)
		if err != nil {
			return err
		}
		if rejected == 0 {
			return fmt.Errorf("resilience-load: burst of %d sleep jobs saw no 429 — queue never filled; shrink -workers/-queue on the daemon or raise -burst", burst)
		}
	}

	start := time.Now()
	var mismatches, failures atomic.Int64
	var retries atomic.Int64
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				rng := rand.New(rand.NewSource(seed + int64(i)*seedStride))
				s := chaos.NewScenario(rng, chaos.Options{MaxFaults: maxFaults})
				req := service.JobRequest{Scenario: s.Args(), TimeoutMs: timeoutMs}
				oracleRes, _, err := service.RunJob(context.Background(), req)
				if err != nil {
					failures.Add(1)
					fmt.Fprintf(out, "job %d: oracle failed: %v\n", i, err)
					continue
				}
				want, err := json.Marshal(oracleRes)
				if err != nil {
					failures.Add(1)
					continue
				}
				code, got, r, err := postRetry(client, addr, req)
				retries.Add(int64(r))
				if err != nil || code != http.StatusOK {
					failures.Add(1)
					fmt.Fprintf(out, "job %d: status %d err %v: %s\n", i, code, err, got)
					continue
				}
				if !bytes.Equal(got, want) {
					mismatches.Add(1)
					fmt.Fprintf(out, "job %d: response differs from oracle\n  scenario: %s\n  got:  %s\n  want: %s\n", i, s.Args(), got, want)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	fmt.Fprintf(out, "resilience-load: %d scenario jobs, %d submitters, %d retries after 429, %d mismatches, %d failures, %.2fs\n",
		n, c, retries.Load(), mismatches.Load(), failures.Load(), time.Since(start).Seconds())
	if m, f := mismatches.Load(), failures.Load(); m > 0 || f > 0 {
		return fmt.Errorf("resilience-load: %d mismatches, %d failures", m, f)
	}
	return nil
}

// runBurst floods the queue with sleep jobs and reports how many were
// rejected with 429 on first contact; each one must still complete OK
// after honoring Retry-After.
func runBurst(client *http.Client, addr string, burst, sleepMs int, out io.Writer) (int, error) {
	var rejected, failed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := service.JobRequest{SleepMs: sleepMs}
			code, body, retries, err := postRetry(client, addr, req)
			if retries > 0 {
				rejected.Add(1)
			}
			if err != nil || code != http.StatusOK {
				failed.Add(1)
				fmt.Fprintf(out, "burst job: status %d err %v: %s\n", code, err, body)
			}
		}()
	}
	wg.Wait()
	fmt.Fprintf(out, "resilience-load: burst %d sleep jobs, %d hit queue-full and retried to completion\n",
		burst, rejected.Load())
	if f := failed.Load(); f > 0 {
		return int(rejected.Load()), fmt.Errorf("resilience-load: %d burst jobs failed", f)
	}
	return int(rejected.Load()), nil
}

// postRetry submits one job, retrying on 429 for as long as the server
// advertises Retry-After (capped, bounded attempts). Returns the final
// status, body, and how many 429s were absorbed.
func postRetry(client *http.Client, addr string, req service.JobRequest) (int, []byte, int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, nil, 0, err
	}
	retries := 0
	for attempt := 0; attempt < 200; attempt++ {
		resp, err := client.Post(addr+"/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, nil, retries, err
		}
		got, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return resp.StatusCode, nil, retries, err
		}
		if resp.StatusCode != http.StatusTooManyRequests {
			return resp.StatusCode, got, retries, nil
		}
		retries++
		wait := 50 * time.Millisecond
		if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
			wait = time.Duration(s) * time.Second
		}
		if wait > 2*time.Second {
			wait = 2 * time.Second
		}
		time.Sleep(wait)
	}
	return http.StatusTooManyRequests, nil, retries, fmt.Errorf("resilience-load: still 429 after %d retries", retries)
}
