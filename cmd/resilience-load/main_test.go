package main

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"resilience/internal/service"
	"resilience/internal/service/router"
)

// TestRunAgainstRealService drives the full load flow — backpressure
// burst plus seeded scenario stream with oracle comparison — against an
// in-process service sized to guarantee queue-full rejections.
func TestRunAgainstRealService(t *testing.T) {
	srv := service.New(service.Config{Workers: 1, QueueCap: 1, RetryAfter: time.Second})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	var out bytes.Buffer
	o := options{addr: ts.URL, n: 3, c: 2, seed: 1, maxFaults: 3, burst: 5, sleepMs: 300}
	if err := run(o, &out); err != nil {
		t.Fatalf("load run failed: %v\n%s", err, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "0 mismatches, 0 failures") {
		t.Fatalf("summary missing clean verdict:\n%s", got)
	}
	if strings.Contains(got, " 0 hit queue-full") {
		t.Fatalf("burst saw no backpressure:\n%s", got)
	}
}

// TestRunDetectsMismatch points the oracle comparison at a server that
// returns a plausible but wrong body; the run must fail.
func TestRunDetectsMismatch(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"kind":"scenario","converged":true}`))
	}))
	defer ts.Close()

	var out bytes.Buffer
	err := run(options{addr: ts.URL, n: 2, c: 1, seed: 1, maxFaults: 2}, &out)
	if err == nil || !strings.Contains(err.Error(), "mismatches") {
		t.Fatalf("tampered responses passed the oracle: err=%v\n%s", err, out.String())
	}
}

// TestRunBurstRequiresRejection: a queue that never fills must fail the
// backpressure phase rather than silently skip it.
func TestRunBurstRequiresRejection(t *testing.T) {
	srv := service.New(service.Config{Workers: 8, QueueCap: 64})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	var out bytes.Buffer
	err := run(options{addr: ts.URL, n: 0, c: 1, seed: 1, maxFaults: 2, burst: 2, sleepMs: 10}, &out)
	if err == nil || !strings.Contains(err.Error(), "no 429") {
		t.Fatalf("unsaturated burst passed: err=%v", err)
	}
}

// TestDupPhaseAgainstCachedService: the duplicate-heavy phase against a
// cache-enabled service must clear the hit-rate floor with every
// response byte-identical to the oracle.
func TestDupPhaseAgainstCachedService(t *testing.T) {
	srv := service.New(service.Config{Workers: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	var out bytes.Buffer
	o := options{addr: ts.URL, n: 0, c: 4, seed: 1, maxFaults: 2,
		dupJobs: 60, dupUnique: 6, dupZipf: 1.2, minHitRate: 0.5}
	if err := run(o, &out); err != nil {
		t.Fatalf("dup phase failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "dup phase 60 jobs over 6 uniques") {
		t.Fatalf("summary missing dup phase line:\n%s", out.String())
	}
	st := srv.Stats()
	if st.CacheHits == 0 {
		t.Fatalf("service saw no cache hits: %+v", st)
	}
}

// TestDupPhaseThroughRouter: the same phase through a router over two
// replicas — counters are the fleet aggregate scraped off the router.
func TestDupPhaseThroughRouter(t *testing.T) {
	s1 := service.New(service.Config{Workers: 2})
	r1 := httptest.NewServer(s1)
	defer r1.Close()
	defer s1.Shutdown(context.Background())
	s2 := service.New(service.Config{Workers: 2})
	r2 := httptest.NewServer(s2)
	defer r2.Close()
	defer s2.Shutdown(context.Background())

	rt, err := router.New(router.Config{Replicas: []string{r1.URL, r2.URL}, HealthEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt)
	defer rts.Close()

	var out bytes.Buffer
	o := options{addr: rts.URL, n: 0, c: 4, seed: 3, maxFaults: 2,
		dupJobs: 60, dupUnique: 6, dupZipf: 1.2, minHitRate: 0.5}
	if err := run(o, &out); err != nil {
		t.Fatalf("dup phase through router failed: %v\n%s", err, out.String())
	}
	if s1.Stats().CacheHits+s2.Stats().CacheHits == 0 {
		t.Fatal("no replica saw cache hits")
	}
}

// TestDupPhaseRequiresCache: against a service with the cache disabled,
// the counters never move and the phase must fail loudly rather than
// report a vacuous 0-rate success.
func TestDupPhaseRequiresCache(t *testing.T) {
	srv := service.New(service.Config{Workers: 2, CacheCap: -1})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	var out bytes.Buffer
	o := options{addr: ts.URL, n: 0, c: 2, seed: 1, maxFaults: 2,
		dupJobs: 10, dupUnique: 2, dupZipf: 1.2, minHitRate: 0.5}
	err := run(o, &out)
	if err == nil || !strings.Contains(err.Error(), "cache counters never moved") {
		t.Fatalf("cacheless dup phase passed: err=%v\n%s", err, out.String())
	}
}

// TestDupPhaseEnforcesFloor: an unreachable hit-rate floor fails even
// when every byte matches.
func TestDupPhaseEnforcesFloor(t *testing.T) {
	srv := service.New(service.Config{Workers: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	var out bytes.Buffer
	o := options{addr: ts.URL, n: 0, c: 1, seed: 5, maxFaults: 2,
		dupJobs: 2, dupUnique: 2, dupZipf: 1.2, minHitRate: 0.99}
	err := run(o, &out)
	if err == nil || !strings.Contains(err.Error(), "below floor") {
		t.Fatalf("sub-floor hit rate passed: err=%v\n%s", err, out.String())
	}
}
