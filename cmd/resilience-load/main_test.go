package main

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"resilience/internal/service"
)

// TestRunAgainstRealService drives the full load flow — backpressure
// burst plus seeded scenario stream with oracle comparison — against an
// in-process service sized to guarantee queue-full rejections.
func TestRunAgainstRealService(t *testing.T) {
	srv := service.New(service.Config{Workers: 1, QueueCap: 1, RetryAfter: time.Second})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	var out bytes.Buffer
	if err := run(ts.URL, 3, 2, 1, 3, 5, 300, 0, &out); err != nil {
		t.Fatalf("load run failed: %v\n%s", err, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "0 mismatches, 0 failures") {
		t.Fatalf("summary missing clean verdict:\n%s", got)
	}
	if strings.Contains(got, " 0 hit queue-full") {
		t.Fatalf("burst saw no backpressure:\n%s", got)
	}
}

// TestRunDetectsMismatch points the oracle comparison at a server that
// returns a plausible but wrong body; the run must fail.
func TestRunDetectsMismatch(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"kind":"scenario","converged":true}`))
	}))
	defer ts.Close()

	var out bytes.Buffer
	err := run(ts.URL, 2, 1, 1, 2, 0, 0, 0, &out)
	if err == nil || !strings.Contains(err.Error(), "mismatches") {
		t.Fatalf("tampered responses passed the oracle: err=%v\n%s", err, out.String())
	}
}

// TestRunBurstRequiresRejection: a queue that never fills must fail the
// backpressure phase rather than silently skip it.
func TestRunBurstRequiresRejection(t *testing.T) {
	srv := service.New(service.Config{Workers: 8, QueueCap: 64})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	var out bytes.Buffer
	err := run(ts.URL, 0, 1, 1, 2, 2, 10, 0, &out)
	if err == nil || !strings.Contains(err.Error(), "no 429") {
		t.Fatalf("unsaturated burst passed: err=%v", err)
	}
}
