package main

import (
	"strings"
	"testing"
)

func TestClassTable(t *testing.T) {
	tb := classTable()
	if len(tb.Rows) != 6 {
		t.Fatalf("%d rows, want 6 fault classes", len(tb.Rows))
	}
	out := tb.String()
	for _, class := range []string{"DCE", "DUE", "SDC", "SWO", "SNF", "LNF"} {
		if !strings.Contains(out, class) {
			t.Errorf("class %s missing", class)
		}
	}
	// Soft/hard labels present.
	if !strings.Contains(out, "soft") || !strings.Contains(out, "hard") {
		t.Error("soft/hard labels missing")
	}
}

func TestSweepTable(t *testing.T) {
	tb := sweepTable()
	if len(tb.Rows) < 5 {
		t.Fatalf("sweep too short: %d rows", len(tb.Rows))
	}
	// First column grows, second shrinks.
	if tb.Rows[0][0] != "1024" {
		t.Errorf("first node count %q", tb.Rows[0][0])
	}
}
