// Command mtbfproj prints the Figure 1 MTBF projection: estimated system
// MTBF per fault class for petascale and exascale machines, plus a sweep
// over intermediate system sizes.
package main

import (
	"flag"
	"fmt"

	"resilience/internal/fault"
	"resilience/internal/report"
)

func main() {
	sweep := flag.Bool("sweep", false, "also print a node-count sweep of combined MTBF")
	flag.Parse()

	fmt.Println(classTable().String())
	fmt.Printf("combined: petascale %.3g h, exascale %.3g h (%.1f min)\n",
		fault.CombinedSystemMTBF(fault.PetascaleNodes, fault.TechPetascale),
		fault.CombinedSystemMTBF(fault.ExascaleNodes, fault.TechExascale),
		fault.CombinedSystemMTBF(fault.ExascaleNodes, fault.TechExascale)*60)

	if *sweep {
		fmt.Println()
		fmt.Println(sweepTable().String())
	}
}

// classTable builds the per-class Figure 1 projection.
func classTable() *report.Table {
	t := report.NewTable("Estimated system MTBF per fault class (Figure 1)",
		"Class", "Soft/Hard", "Node MTBF petascale (h)", "System MTBF 20K nodes (h)", "System MTBF 1M nodes 11nm (h)")
	for _, c := range fault.Classes() {
		kind := "hard"
		if c.IsSoft() {
			kind = "soft"
		}
		t.AddF(c.String(), kind,
			fault.NodeMTBF(c, fault.TechPetascale),
			fault.SystemMTBF(c, fault.PetascaleNodes, fault.TechPetascale),
			fault.SystemMTBF(c, fault.ExascaleNodes, fault.TechExascale))
	}
	return t
}

// sweepTable builds the combined-MTBF node-count sweep.
func sweepTable() *report.Table {
	t := report.NewTable("Combined system MTBF vs node count (11nm technology)",
		"Nodes", "MTBF (h)", "MTBF (min)")
	for n := 1024; n <= fault.ExascaleNodes; n *= 4 {
		m := fault.CombinedSystemMTBF(n, fault.TechExascale)
		t.AddF(n, m, m*60)
	}
	return t
}
