package main

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"
)

// bootDaemon runs the daemon with the given options on an ephemeral
// port, waits for its announced address, and returns it plus the log
// buffer and stop/done plumbing.
func bootDaemon(t *testing.T, o options) (addr string, buf *bytes.Buffer, stop chan struct{}, done chan error) {
	t.Helper()
	buf = &bytes.Buffer{}
	log.SetOutput(buf)
	t.Cleanup(func() { log.SetOutput(log.Writer()) })

	stop = make(chan struct{})
	done = make(chan error, 1)
	o.addr = "127.0.0.1:0"
	o.stop = stop
	go func() { done <- run(o) }()

	re := regexp.MustCompile(`resilienced listening on http://([^\s]+)`)
	for deadline := time.Now().Add(5 * time.Second); addr == ""; {
		if m := re.FindStringSubmatch(buf.String()); m != nil {
			addr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address:\n%s", buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	return addr, buf, stop, done
}

// TestRunServesAndDrains boots the daemon on an ephemeral port, solves
// one scenario through it (twice — the repeat must be a cache hit), and
// stops it via the test hook.
func TestRunServesAndDrains(t *testing.T) {
	addr, buf, stop, done := bootDaemon(t, options{
		workers: 2, queueCap: 4,
		jobTimeout: time.Minute, retryAfter: time.Second, drainGrace: 10 * time.Second,
	})

	body := `{"scenario":"-grid 6 -ranks 2 -scheme LI -tol 1e-10 -seed 5 -faults SNF@4:r1"}`
	var first []byte
	for i, wantCache := range []string{"miss", "hit"} {
		resp, err := http.Post("http://"+addr+"/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %d answered %d: %s", i, resp.StatusCode, got)
		}
		if xc := resp.Header.Get("X-Cache"); xc != wantCache {
			t.Fatalf("solve %d X-Cache %q, want %q", i, xc, wantCache)
		}
		if i == 0 {
			first = got
			var res map[string]any
			if err := json.Unmarshal(got, &res); err != nil {
				t.Fatal(err)
			}
			if res["kind"] != "scenario" || res["converged"] != true {
				t.Fatalf("unexpected result: %s", got)
			}
		} else if !bytes.Equal(got, first) {
			t.Fatalf("cache hit bytes differ:\n got %s\nwant %s", got, first)
		}
	}

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain failed: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after stop")
	}
	if !strings.Contains(buf.String(), "drained clean") {
		t.Fatalf("no clean-drain log line:\n%s", buf.String())
	}
}

// TestRunPprofFlag: -pprof-addr exposes /debug/pprof/ on its own
// listener, and leaving it empty exposes nothing.
func TestRunPprofFlag(t *testing.T) {
	addr, buf, stop, done := bootDaemon(t, options{
		workers: 1, queueCap: 1, pprofAddr: "127.0.0.1:0",
		jobTimeout: time.Minute, retryAfter: time.Second, drainGrace: 10 * time.Second,
	})

	re := regexp.MustCompile(`pprof listening on http://([^\s/]+)`)
	m := re.FindStringSubmatch(buf.String())
	if m == nil {
		t.Fatalf("pprof address never announced:\n%s", buf.String())
	}
	resp, err := http.Get("http://" + m[1] + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof endpoint answered %d", resp.StatusCode)
	}

	// The service port must NOT serve pprof.
	resp, err = http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof leaked onto the service listener")
	}

	close(stop)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadAddr(t *testing.T) {
	if err := run(options{addr: "256.0.0.1:-1", workers: 1, queueCap: 1}); err == nil {
		t.Fatal("bad listen address accepted")
	}
	if err := run(options{addr: "127.0.0.1:0", pprofAddr: "256.0.0.1:-1", workers: 1, queueCap: 1}); err == nil {
		t.Fatal("bad pprof address accepted")
	}
}
