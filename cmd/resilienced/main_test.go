package main

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestRunServesAndDrains boots the daemon on an ephemeral port, solves
// one scenario through it, and stops it via the test hook.
func TestRunServesAndDrains(t *testing.T) {
	var buf bytes.Buffer
	log.SetOutput(&buf)
	defer log.SetOutput(log.Writer())

	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run("127.0.0.1:0", 2, 4, time.Minute, time.Second, 10*time.Second, stop)
	}()

	var addr string
	re := regexp.MustCompile(`listening on http://([^\s]+)`)
	for deadline := time.Now().Add(5 * time.Second); addr == ""; {
		if m := re.FindStringSubmatch(buf.String()); m != nil {
			addr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address:\n%s", buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	body := `{"scenario":"-grid 6 -ranks 2 -scheme LI -tol 1e-10 -seed 5 -faults SNF@4:r1"}`
	resp, err := http.Post("http://"+addr+"/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve answered %d: %s", resp.StatusCode, got)
	}
	var res map[string]any
	if err := json.Unmarshal(got, &res); err != nil {
		t.Fatal(err)
	}
	if res["kind"] != "scenario" || res["converged"] != true {
		t.Fatalf("unexpected result: %s", got)
	}

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain failed: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after stop")
	}
	if !strings.Contains(buf.String(), "drained clean") {
		t.Fatalf("no clean-drain log line:\n%s", buf.String())
	}
}

func TestRunRejectsBadAddr(t *testing.T) {
	if err := run("256.0.0.1:-1", 1, 1, time.Second, time.Second, time.Second, nil); err == nil {
		t.Fatal("bad listen address accepted")
	}
}
