// Command resilienced serves resilient solves over HTTP/JSON.
//
// Jobs (scenario replays, registered experiments, diagnostic sleeps)
// are POSTed to /solve, admitted through a bounded queue, and executed
// on a worker pool; when the queue is full the daemon answers 429 with
// a Retry-After hint instead of stalling the client. /healthz reports
// liveness and queue depth, /metrics exports the counters in Prometheus
// text format. SIGINT/SIGTERM drains: admission stops, in-flight jobs
// finish, then the process exits.
//
//	resilienced -addr 127.0.0.1:8912 -workers 4 -queue 8
//	curl -s localhost:8912/solve -d '{"scenario":"-grid 8 -ranks 4 -scheme CR-M -ckpt 5 -tol 1e-10 -seed 7 -faults SWO@5:r1,SNF@6:r0"}'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"resilience/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8912", "listen address (port 0 picks a free port)")
		workers    = flag.Int("workers", 0, "solver pool size (0: GOMAXPROCS)")
		queueCap   = flag.Int("queue", 0, "pending-job queue capacity (0: 2x workers)")
		jobTimeout = flag.Duration("job-timeout", 120*time.Second, "per-job wall-clock cap")
		retryAfter = flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
		drainGrace = flag.Duration("drain-grace", 30*time.Second, "max time to drain in-flight jobs on shutdown")
	)
	flag.Parse()
	if err := run(*addr, *workers, *queueCap, *jobTimeout, *retryAfter, *drainGrace, nil); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run serves until a signal (or a send on stop, for tests) and drains.
func run(addr string, workers, queueCap int, jobTimeout, retryAfter, drainGrace time.Duration, stop <-chan struct{}) error {
	svc := service.New(service.Config{
		Workers:    workers,
		QueueCap:   queueCap,
		JobTimeout: jobTimeout,
		RetryAfter: retryAfter,
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: svc}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	log.Printf("resilienced listening on http://%s", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case s := <-sig:
		log.Printf("caught %v, draining", s)
	case <-stop:
		log.Printf("stop requested, draining")
	case err := <-serveErr:
		return fmt.Errorf("resilienced: serve: %w", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainGrace)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		return fmt.Errorf("resilienced: drain: %w", err)
	}
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("resilienced: http shutdown: %w", err)
	}
	log.Printf("drained clean, exiting")
	return nil
}
