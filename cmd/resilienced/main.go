// Command resilienced serves resilient solves over HTTP/JSON.
//
// Jobs (scenario replays, registered experiments, diagnostic sleeps)
// are POSTed to /solve. A content-addressed result cache with
// single-flight dedup answers repeated jobs ahead of admission; new
// work is admitted through a bounded queue and executed on a worker
// pool. When the queue is full the daemon answers 429 with a
// Retry-After hint instead of stalling the client. /healthz reports
// liveness and queue depth, /metrics exports the counters in Prometheus
// text format. SIGINT/SIGTERM drains: admission stops, in-flight jobs
// finish, then the process exits.
//
//	resilienced -addr 127.0.0.1:8912 -workers 4 -queue 8
//	curl -s localhost:8912/solve -d '{"scenario":"-grid 8 -ranks 4 -scheme CR-M -ckpt 5 -tol 1e-10 -seed 7 -faults SWO@5:r1,SNF@6:r0"}'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"resilience/internal/service"
	"resilience/internal/telemetry"
)

// options carries every run parameter; tests fill it directly.
type options struct {
	addr       string
	workers    int
	queueCap   int
	cacheCap   int
	jobTimeout time.Duration
	retryAfter time.Duration
	drainGrace time.Duration
	pprofAddr  string
	flightDir  string
	traceDir   string
	stop       <-chan struct{} // test hook: a close drains like a signal
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8912", "listen address (port 0 picks a free port)")
	flag.IntVar(&o.workers, "workers", 0, "solver pool size (0: GOMAXPROCS)")
	flag.IntVar(&o.queueCap, "queue", 0, "pending-job queue capacity (0: 2x workers)")
	flag.IntVar(&o.cacheCap, "cache", 0, "result-cache capacity in entries (0: 4096, negative: disabled)")
	flag.DurationVar(&o.jobTimeout, "job-timeout", 120*time.Second, "per-job wall-clock cap")
	flag.DurationVar(&o.retryAfter, "retry-after", time.Second, "Retry-After hint on 429 responses")
	flag.DurationVar(&o.drainGrace, "drain-grace", 30*time.Second, "max time to drain in-flight jobs on shutdown")
	flag.StringVar(&o.pprofAddr, "pprof-addr", "", "serve net/http/pprof on this address (empty: disabled)")
	flag.StringVar(&o.flightDir, "flight-dir", "", "dump flight-recorder rings into this directory on job failure/5xx (empty: disabled)")
	flag.StringVar(&o.traceDir, "trace-dir", "", "write the merged wall-clock + virtual-time Chrome trace here on shutdown (empty: disabled)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// servePprof exposes the net/http/pprof handlers (registered on the
// default mux by the underscore import) on their own listener, kept off
// the service port so profiling is never reachable from service
// clients.
func servePprof(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("pprof listening on http://%s/debug/pprof/", ln.Addr())
	go http.Serve(ln, nil)
	return nil
}

// run serves until a signal (or a close of o.stop, for tests) and drains.
func run(o options) error {
	if o.flightDir != "" {
		telemetry.DefaultFlight().SetDump(o.flightDir, "resilienced")
	}
	svc := service.New(service.Config{
		Workers:    o.workers,
		QueueCap:   o.queueCap,
		CacheCap:   o.cacheCap,
		JobTimeout: o.jobTimeout,
		RetryAfter: o.retryAfter,
	})
	if o.pprofAddr != "" {
		if err := servePprof(o.pprofAddr); err != nil {
			return fmt.Errorf("resilienced: pprof: %w", err)
		}
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: svc}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	log.Printf("resilienced listening on http://%s", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case s := <-sig:
		log.Printf("caught %v, draining", s)
	case <-o.stop:
		log.Printf("stop requested, draining")
	case err := <-serveErr:
		return fmt.Errorf("resilienced: serve: %w", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), o.drainGrace)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		return fmt.Errorf("resilienced: drain: %w", err)
	}
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("resilienced: http shutdown: %w", err)
	}
	if o.traceDir != "" {
		if err := dumpTrace(svc, o.traceDir); err != nil {
			log.Printf("trace dump failed: %v", err)
		}
	}
	log.Printf("drained clean, exiting")
	return nil
}

// dumpTrace writes the merged Chrome trace of this run — the retained
// wall-clock request spans alongside the last scenario's virtual-time
// rank tracks — for loading into Perfetto.
func dumpTrace(svc *service.Server, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, fmt.Sprintf("trace-resilienced-%d.json", os.Getpid()))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := svc.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	log.Printf("merged trace written to %s", path)
	return nil
}
