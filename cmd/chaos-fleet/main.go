// Command chaos-fleet shards a seeded chaos campaign across the solve
// service and distills the results. Scenarios are generated from the
// campaign seed (scenario i = chaos.ScenarioAt(seed, i)), batched into
// verdict-bearing jobs against a resilience-router (or a bare
// resilienced, or the in-process oracle with -oracle), and every
// invariant verdict streams back. Violations are shrunk server-side —
// the greedy shrinker's candidate passes are themselves fleet batches —
// and the "interesting" scenarios are distilled into the fuzz corpus.
//
// The campaign is byte-deterministic: the same -seed/-n produce the
// identical verdict stream, failure set, and minimal shrunk scenarios
// for any replica count, batch size, or concurrency, and identically for
// -oracle. scripts/check.sh cmp(1)s exactly that.
//
//	chaos-fleet -addr http://127.0.0.1:8910 -n 2000 -seed 1
//	chaos-fleet -oracle -n 2000 -seed 1 -corpus-out internal/chaos/testdata/corpus/distilled.txt
//	chaos-fleet -addr http://127.0.0.1:8910 -n 500 -break convergence -verdicts-out fleet.out
//
// Exit status: 0 when every scenario is ok or a classified expected
// failure; 1 when any invariant was violated (the minimal shrunk
// scenario and its replay line are printed); 2 on transport or usage
// errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"resilience/internal/chaos"
	"resilience/internal/chaos/fleet"
)

func main() {
	var (
		addr      = flag.String("addr", "http://127.0.0.1:8910", "resilience-router or resilienced base URL")
		oracle    = flag.Bool("oracle", false, "evaluate in-process instead of over HTTP (the determinism ground truth)")
		n         = flag.Int("n", 2000, "number of scenarios")
		seed      = flag.Int64("seed", 1, "campaign seed (scenario i derives seed+i*stride)")
		maxFaults = flag.Int("max-faults", 3, "faults per scenario drawn from 0..k")
		schemes   = flag.String("schemes", strings.Join(chaos.DefaultSchemes(), ","), "comma-separated scheme pool")
		tol       = flag.Float64("tol", 1e-10, "solver tolerance")
		batch     = flag.Int("batch", 64, "scenarios per fleet batch")
		c         = flag.Int("c", 4, "batches in flight at once")
		breakInv  = flag.String("break", "", "deliberately fail this invariant on faulted scenarios (fleet self-test); one of: "+strings.Join(chaos.InvariantNames(), ", "))
		budget    = flag.Int("shrink-budget", 400, "candidate evaluations per shrunk failure")
		corpusOut = flag.String("corpus-out", "", "write the distilled scenario corpus to this file ('-': stdout)")
		verdicts  = flag.String("verdicts-out", "", "write the indexed verdict stream to this file ('-': stdout)")
		verbose   = flag.Bool("v", false, "print per-batch progress")
	)
	flag.Parse()

	opts := fleet.Options{
		Campaign: chaos.Options{
			N:              *n,
			Seed:           *seed,
			MaxFaults:      *maxFaults,
			Schemes:        strings.Split(*schemes, ","),
			Tol:            *tol,
			BreakInvariant: *breakInv,
		},
		Batch:        *batch,
		Workers:      *c,
		ShrinkBudget: *budget,
	}
	if *verbose {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "chaos-fleet: %d/%d scenarios\n", done, total)
		}
	}

	var ev fleet.Evaluator
	if *oracle {
		ev = fleet.NewOracle(*breakInv, runtime.GOMAXPROCS(0))
	} else {
		ev = fleet.NewClient(*addr, *breakInv)
	}

	start := time.Now()
	rep, err := fleet.Run(context.Background(), opts, ev)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos-fleet:", err)
		os.Exit(2)
	}
	elapsed := time.Since(start).Seconds()

	if *verdicts != "" {
		if err := writeTo(*verdicts, func(w io.Writer) error {
			return fleet.WriteVerdicts(w, rep.Lines)
		}); err != nil {
			fmt.Fprintln(os.Stderr, "chaos-fleet:", err)
			os.Exit(2)
		}
	}
	if *corpusOut != "" {
		entries, err := fleet.Distill(opts.Campaign, rep.Lines)
		if err == nil {
			err = writeTo(*corpusOut, func(w io.Writer) error {
				return chaos.WriteCorpus(w, entries)
			})
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "chaos-fleet:", err)
			os.Exit(2)
		}
		fmt.Printf("chaos-fleet: distilled %d corpus scenarios\n", len(entries))
	}

	mode := "fleet " + *addr
	if *oracle {
		mode = "oracle"
	}
	fmt.Printf("chaos-fleet: %d scenarios via %s: %d ok, %d expected-failure, %d FAILED; %d evaluations, %.0f scenarios/s\n",
		rep.N, mode, rep.OK, rep.Expected, rep.Failed, rep.Evaluations, float64(rep.N)/elapsed)
	for _, sh := range rep.Shrunk {
		fmt.Printf("minimal failing scenario (shrunk from #%d in %d evaluations):\n  %s\n  replay: go run ./cmd/chaos -replay %q\n  verdict: %s\n",
			sh.Index, sh.Evals, sh.Args, sh.Args, sh.Verdict)
	}
	if rep.Failed > 0 {
		os.Exit(1)
	}
}

// writeTo writes through f to path, with "-" meaning stdout.
func writeTo(path string, f func(io.Writer) error) error {
	if path == "-" {
		return f(os.Stdout)
	}
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f(file); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}
