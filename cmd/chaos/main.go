// Command chaos runs deterministic fault-campaigns against the resilient
// solver and checks the runtime invariant battery on every scenario.
//
// A campaign is fully determined by its flags: the same -n/-seed/-schemes
// produce byte-identical output at any -workers. When a scenario violates
// an invariant, the reporter shrinks it and prints the minimal failing
// scenario as a flag string replayable with -replay.
//
//	chaos -n 200 -seed 1                  # the acceptance campaign
//	chaos -replay '-grid 8 -ranks 4 -scheme LI -tol 1e-10 -seed 7 -faults SNF@5:r2'
//	chaos -n 50 -seed 1 -break convergence  # prove the reporter end-to-end
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"resilience/internal/chaos"
)

func main() {
	var (
		n         = flag.Int("n", 200, "number of scenarios")
		seed      = flag.Int64("seed", 1, "campaign seed (scenario i derives seed+i*stride)")
		workers   = flag.Int("workers", 4, "concurrent scenario runners")
		maxFaults = flag.Int("max-faults", 3, "faults per scenario drawn from 0..k")
		schemes   = flag.String("schemes", strings.Join(chaos.DefaultSchemes(), ","), "comma-separated scheme pool")
		tol       = flag.Float64("tol", 1e-10, "solver tolerance")
		recheck   = flag.Bool("recheck", true, "rerun each scenario for the determinism and overlap-equivalence invariants")
		breakInv  = flag.String("break", "", "deliberately fail this invariant on faulted scenarios (checker self-test); one of: "+strings.Join(chaos.InvariantNames(), ", "))
		replay    = flag.String("replay", "", "run a single scenario from its replay flag string instead of a campaign")
		verbose   = flag.Bool("v", false, "print every scenario line, not only failures")
	)
	flag.Parse()
	if err := run(*n, *seed, *workers, *maxFaults, *schemes, *tol, *recheck, *breakInv, *replay, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(n int, seed int64, workers, maxFaults int, schemes string, tol float64, recheck bool, breakInv, replay string, verbose bool) error {
	opts := chaos.Options{
		N:         n,
		Seed:      seed,
		Workers:   workers,
		MaxFaults: maxFaults,
		Schemes:   strings.Split(schemes, ","),
		Tol:       tol,
		Recheck:   recheck,
	}
	if breakInv != "" {
		if !validInvariant(breakInv) {
			return fmt.Errorf("chaos: -break %q is not an invariant (known: %s)", breakInv, strings.Join(chaos.InvariantNames(), ", "))
		}
		opts.BreakInvariant = breakInv
	}

	if replay != "" {
		return runReplay(replay, opts)
	}

	fmt.Printf("chaos campaign: n=%d seed=%d schemes=%s max-faults=%d tol=%g recheck=%t\n",
		n, seed, schemes, maxFaults, tol, recheck)
	results := chaos.RunCampaign(opts)
	var ok, expected int
	var failures []*chaos.Result
	for _, r := range results {
		switch {
		case r.Failed():
			failures = append(failures, r)
		case r.Expected != "":
			expected++
		default:
			ok++
		}
		if verbose || r.Failed() {
			fmt.Println(r.Line())
			if r.Failed() {
				fmt.Printf("      replay: %s\n", r.Scenario.Args())
			}
		}
	}
	fmt.Printf("summary: %d scenarios, %d ok, %d expected-failure, %d violating\n",
		len(results), ok, expected, len(failures))
	if len(failures) == 0 {
		return nil
	}

	// Shrink the first failure to its minimal reproduction. The oracle
	// reruns the candidate through a fresh runner with the same options,
	// so the minimum fails for the same reason the original did.
	first := failures[0]
	rn := chaos.NewRunner(opts)
	min := chaos.Shrink(first.Scenario, func(c *chaos.Scenario) bool {
		return rn.Run(first.Index, c).Failed()
	})
	minRes := rn.Run(first.Index, min)
	fmt.Printf("minimal failing scenario (shrunk from #%04d):\n", first.Index)
	fmt.Printf("  %s\n", minRes.Line())
	fmt.Printf("  replay: go run ./cmd/chaos -replay '%s'\n", min.Args())
	return fmt.Errorf("chaos: %d of %d scenarios violated invariants", len(failures), len(results))
}

// runReplay executes one scenario verbosely.
func runReplay(args string, opts chaos.Options) error {
	s, err := chaos.ParseArgs(args)
	if err != nil {
		return err
	}
	r := chaos.NewRunner(opts).Run(0, s)
	fmt.Println(r.Line())
	if rep := r.Report; rep != nil {
		fmt.Printf("  scheme=%s iters=%d converged=%t relres=%.3g restarts=%d faults-fired=%d\n",
			rep.Scheme, rep.Iters, rep.Converged, rep.RelRes, rep.Restarts, len(rep.Faults))
		fmt.Printf("  time=%.6gs energy=%.6gJ avg-power=%.6gW checkpoints=%d\n",
			rep.Time, rep.Energy, rep.AvgPower, rep.Checkpoints)
	}
	if r.Failed() {
		return fmt.Errorf("chaos: scenario violated invariants")
	}
	return nil
}

func validInvariant(name string) bool {
	for _, n := range chaos.InvariantNames() {
		if n == name {
			return true
		}
	}
	return false
}
