package main

import (
	"strings"
	"testing"
)

func TestRunSmallCampaign(t *testing.T) {
	if err := run(5, 1, 2, 3, strings.Join([]string{"LI", "CR-M"}, ","), 1e-10, true, "", "", false); err != nil {
		t.Fatalf("clean campaign failed: %v", err)
	}
}

func TestRunReplay(t *testing.T) {
	args := "-grid 6 -ranks 3 -scheme LI -tol 1e-10 -seed 5 -faults SNF@4:r1,SNF@4:r2"
	if err := run(0, 1, 1, 3, "LI", 1e-10, true, "", args, false); err != nil {
		t.Fatalf("replay failed: %v", err)
	}
}

func TestRunReplayRejectsBadArgs(t *testing.T) {
	if err := run(0, 1, 1, 3, "LI", 1e-10, false, "", "-grid banana", false); err == nil {
		t.Fatal("bad replay string accepted")
	}
}

func TestRunBreakInvariantFails(t *testing.T) {
	err := run(8, 1, 2, 3, "LI", 1e-10, false, "convergence", "", false)
	if err == nil {
		t.Fatal("-break convergence campaign reported success")
	}
	if !strings.Contains(err.Error(), "violated") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestRunRejectsUnknownInvariant(t *testing.T) {
	if err := run(1, 1, 1, 3, "LI", 1e-10, false, "not-an-invariant", "", false); err == nil {
		t.Fatal("unknown -break invariant accepted")
	}
}
