// Command resilience-router fronts a fleet of resilienced replicas with
// a consistent-hash router.
//
// Canonical job keys map stably onto replicas, so each replica's result
// cache concentrates on its own key range and the fleet-wide hit rate
// approaches a single cache N times the size. Replica 429s (and their
// Retry-After hints) pass through untouched; the router adds its own
// bounded in-flight admission on top. Replica death or drain re-shards
// the ring — only the dead replica's key range moves. /healthz reports
// fleet liveness, /metrics aggregates per-replica queue depth and cache
// hit rates, and POST /replicas changes membership at runtime.
// SIGINT/SIGTERM drains in-flight forwards, then exits.
//
//	resilience-router -addr 127.0.0.1:8910 \
//	  -replicas http://127.0.0.1:8912,http://127.0.0.1:8913
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"resilience/internal/service/router"
	"resilience/internal/telemetry"
)

// options carries every run parameter; tests fill it directly.
type options struct {
	addr        string
	replicas    string // comma-separated base URLs
	vnodes      int
	maxInflight int
	retryAfter  time.Duration
	healthEvery time.Duration
	drainGrace  time.Duration
	pprofAddr   string
	flightDir   string
	stop        <-chan struct{} // test hook: a close drains like a signal
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8910", "listen address (port 0 picks a free port)")
	flag.StringVar(&o.replicas, "replicas", "", "comma-separated replica base URLs (required)")
	flag.IntVar(&o.vnodes, "vnodes", 0, "virtual nodes per replica on the hash ring (0: 64)")
	flag.IntVar(&o.maxInflight, "max-inflight", 0, "max concurrently forwarded requests (0: 256)")
	flag.DurationVar(&o.retryAfter, "retry-after", time.Second, "Retry-After hint on router-side 429s")
	flag.DurationVar(&o.healthEvery, "health-every", 2*time.Second, "replica health-probe interval (negative: disabled)")
	flag.DurationVar(&o.drainGrace, "drain-grace", 30*time.Second, "max time to drain in-flight forwards on shutdown")
	flag.StringVar(&o.pprofAddr, "pprof-addr", "", "serve net/http/pprof on this address (empty: disabled)")
	flag.StringVar(&o.flightDir, "flight-dir", "", "dump flight-recorder rings into this directory on routing failures (empty: disabled)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// servePprof exposes the net/http/pprof handlers (registered on the
// default mux by the underscore import) on their own listener, kept off
// the routing port.
func servePprof(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("pprof listening on http://%s/debug/pprof/", ln.Addr())
	go http.Serve(ln, nil)
	return nil
}

// run routes until a signal (or a close of o.stop, for tests) and drains.
func run(o options) error {
	if o.flightDir != "" {
		telemetry.DefaultFlight().SetDump(o.flightDir, "resilience-router")
	}
	var urls []string
	for _, u := range strings.Split(o.replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	rt, err := router.New(router.Config{
		Replicas:    urls,
		VNodes:      o.vnodes,
		MaxInflight: o.maxInflight,
		RetryAfter:  o.retryAfter,
		HealthEvery: o.healthEvery,
	})
	if err != nil {
		return fmt.Errorf("resilience-router: %w", err)
	}
	if o.pprofAddr != "" {
		if err := servePprof(o.pprofAddr); err != nil {
			return fmt.Errorf("resilience-router: pprof: %w", err)
		}
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		rt.Shutdown(context.Background())
		return err
	}
	hs := &http.Server{Handler: rt}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	log.Printf("resilience-router listening on http://%s (%d replicas)", ln.Addr(), len(urls))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case s := <-sig:
		log.Printf("caught %v, draining", s)
	case <-o.stop:
		log.Printf("stop requested, draining")
	case err := <-serveErr:
		return fmt.Errorf("resilience-router: serve: %w", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), o.drainGrace)
	defer cancel()
	if err := rt.Shutdown(ctx); err != nil {
		return fmt.Errorf("resilience-router: drain: %w", err)
	}
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("resilience-router: http shutdown: %w", err)
	}
	log.Printf("drained clean, exiting")
	return nil
}
