package main

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"resilience/internal/service"
)

// TestRunRoutesAndDrains boots the router over two real in-process
// replicas, solves through it (repeat must hit a replica cache), and
// stops it via the test hook.
func TestRunRoutesAndDrains(t *testing.T) {
	r1 := httptest.NewServer(service.New(service.Config{Workers: 2}))
	defer r1.Close()
	r2 := httptest.NewServer(service.New(service.Config{Workers: 2}))
	defer r2.Close()

	var buf bytes.Buffer
	log.SetOutput(&buf)
	defer log.SetOutput(log.Writer())

	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run(options{
			addr:        "127.0.0.1:0",
			replicas:    r1.URL + ", " + r2.URL,
			healthEvery: -1,
			retryAfter:  time.Second,
			drainGrace:  10 * time.Second,
			stop:        stop,
		})
	}()

	var addr string
	re := regexp.MustCompile(`resilience-router listening on http://([^\s]+)`)
	for deadline := time.Now().Add(5 * time.Second); addr == ""; {
		if m := re.FindStringSubmatch(buf.String()); m != nil {
			addr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("router never announced its address:\n%s", buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	body := `{"scenario":"-grid 6 -ranks 2 -scheme LI -tol 1e-10 -seed 5"}`
	var first []byte
	for i, wantCache := range []string{"miss", "hit"} {
		resp, err := http.Post("http://"+addr+"/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %d answered %d: %s", i, resp.StatusCode, got)
		}
		if xc := resp.Header.Get("X-Cache"); xc != wantCache {
			t.Fatalf("solve %d X-Cache %q, want %q", i, xc, wantCache)
		}
		if i == 0 {
			first = got
			var res map[string]any
			if err := json.Unmarshal(got, &res); err != nil {
				t.Fatal(err)
			}
			if res["kind"] != "scenario" {
				t.Fatalf("unexpected result: %s", got)
			}
		} else if !bytes.Equal(got, first) {
			t.Fatalf("repeat bytes differ through router")
		}
	}

	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(hz), `"replicas_alive":2`) {
		t.Fatalf("healthz %d: %s", resp.StatusCode, hz)
	}

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain failed: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("router did not exit after stop")
	}
	if !strings.Contains(buf.String(), "drained clean") {
		t.Fatalf("no clean-drain log line:\n%s", buf.String())
	}
}

func TestRunRequiresReplicas(t *testing.T) {
	if err := run(options{addr: "127.0.0.1:0", replicas: " , "}); err == nil {
		t.Fatal("empty replica set accepted")
	}
}

func TestRunRejectsBadAddr(t *testing.T) {
	r1 := httptest.NewServer(service.New(service.Config{Workers: 1}))
	defer r1.Close()
	if err := run(options{addr: "256.0.0.1:-1", replicas: r1.URL, healthEvery: -1}); err == nil {
		t.Fatal("bad listen address accepted")
	}
}
