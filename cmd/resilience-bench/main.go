// Command resilience-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	resilience-bench -exp fig5 -scale ci
//	resilience-bench -exp all -scale ci -csv out/
//	resilience-bench -trace-out run.json -scale ci   (timeline of one traced solve)
//	resilience-bench -list
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"resilience"
	"resilience/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("resilience-bench: ")

	exp := flag.String("exp", "all", "experiment id (fig1..fig9, tab3..tab6, ablation-*) or 'all'")
	scale := flag.String("scale", "ci", "workload scale: tiny, ci or paper")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	workers := flag.Int("workers", 0, "experiment-engine worker count (0: RES_WORKERS env, else GOMAXPROCS; 1: sequential)")
	overlap := flag.Bool("overlap", false, "overlap halo exchange with interior SpMV in every distributed solve (false: RES_OVERLAP env, else fused)")
	observe := flag.Bool("observe", false, "attach a discarded observability recorder to every cell solve (purity exercise; output is byte-identical)")
	schedName := flag.String("sched", "auto", "rank scheduler for every solve: auto (RES_SCHED env), goroutine, coop (byte-identical output)")
	spmvName := flag.String("spmv", "auto", "SpMV kernel layout for every solve: auto (RES_SPMV env), csr, sell (byte-identical output)")
	seed := flag.Int64("seed", 0, "fault-injection seed for experiments and the traced solve (0: the default seed behind the checked-in tables)")
	traceOut := flag.String("trace-out", "", "instead of experiments, run one traced solve and write its Chrome trace-event JSON timeline (load in Perfetto) to this file")
	metricsFile := flag.String("metrics", "", "with the traced solve, write per-rank counters as CSV to this file ('-' for stdout)")
	traceScheme := flag.String("trace-scheme", "LI-DVFS", "recovery scheme of the traced solve")
	traceMatrix := flag.String("trace-matrix", "Kuu", "catalog matrix of the traced solve")
	traceRanks := flag.Int("trace-ranks", 32, "rank count of the traced solve")
	traceFaults := flag.Int("trace-faults", 3, "injected fault count of the traced solve")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile (real time, not virtual) to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	list := flag.Bool("list", false, "list available experiments and exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memprofile)

	sched, err := resilience.ParseSched(*schedName)
	if err != nil {
		log.Fatal(err)
	}
	spmv, err := resilience.ParseSpMV(*spmvName)
	if err != nil {
		log.Fatal(err)
	}

	if *list {
		for _, r := range resilience.Experiments() {
			fmt.Printf("%-18s %s\n", r.ID, r.Title)
		}
		return
	}

	if *traceOut != "" || *metricsFile != "" {
		if err := tracedRun(*traceMatrix, *scale, *traceScheme, *traceRanks,
			*traceFaults, *overlap, sched, spmv, *seed, *traceOut, *metricsFile); err != nil {
			log.Fatal(err)
		}
		return
	}

	var ids []string
	if *exp == "all" {
		for _, r := range resilience.Experiments() {
			ids = append(ids, r.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}

	failed := 0
	for _, id := range ids {
		start := time.Now()
		res, err := resilience.RunExperimentOpts(strings.TrimSpace(id), *scale,
			resilience.ExperimentOptions{Workers: *workers, Overlap: *overlap, Observe: *observe,
				Sched: sched, SpMV: spmv, Seed: *seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			failed++
			continue
		}
		fmt.Println(res.String())
		fmt.Printf("(%s completed in %.1fs, seed %d)\n\n", id, time.Since(start).Seconds(), res.Seed)
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, res); err != nil {
				fmt.Fprintf(os.Stderr, "writing CSV for %s: %v\n", id, err)
				failed++
			}
		}
	}
	if failed > 0 {
		writeMemProfile(*memprofile)
		pprof.StopCPUProfile()
		os.Exit(1)
	}
}

// tracedRun executes one fully observed resilient solve and exports its
// timeline and/or per-rank metrics — the zero-setup path from "which rank
// waited where" to a Perfetto tab.
func tracedRun(matrix, scale, scheme string, ranks, faults int, overlap bool,
	sched resilience.SchedMode, spmv resilience.SpMVLayout,
	seed int64, traceOut, metricsFile string) error {

	a, err := resilience.CatalogMatrix(matrix, scale)
	if err != nil {
		return err
	}
	b, _ := resilience.RHS(a)
	rec := resilience.NewRecorder()
	rep, err := resilience.Solve(a, b, resilience.SolveOptions{
		Scheme:            scheme,
		Ranks:             ranks,
		Faults:            faults,
		Overlap:           overlap,
		Sched:             sched,
		SpMV:              spmv,
		Seed:              seed,
		Observer:          rec,
		KeepPowerSegments: true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("traced solve: %s on %s (%v), %d ranks, %d faults, seed %d: %d iters, %.6g s, %.6g J\n",
		rep.Scheme, matrix, a, ranks, len(rep.Faults), rep.Seed, rep.Iters, rep.Time, rep.Energy)
	if traceOut != "" {
		if err := writeFile(traceOut, func(w io.Writer) error {
			return obs.WriteChromeTrace(w, rec, rep.Meter)
		}); err != nil {
			return err
		}
		fmt.Printf("timeline: %d spans on %d ranks written to %s (open in Perfetto)\n",
			rec.SpanCount(), rec.Ranks(), traceOut)
	}
	if metricsFile != "" {
		if err := writeFile(metricsFile, func(w io.Writer) error {
			return obs.WriteMetricsCSV(w, rec.Metrics())
		}); err != nil {
			return err
		}
	}
	return nil
}

// writeFile runs emit against the named file, with "-" meaning stdout.
func writeFile(path string, emit func(io.Writer) error) error {
	if path == "-" {
		return emit(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

func writeCSVs(dir string, res *resilience.ExperimentResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range res.Tables {
		name := fmt.Sprintf("%s_%d.csv", res.ID, i)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(t.CSV()), 0o644); err != nil {
			return err
		}
	}
	return nil
}
