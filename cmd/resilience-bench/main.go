// Command resilience-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	resilience-bench -exp fig5 -scale ci
//	resilience-bench -exp all -scale ci -csv out/
//	resilience-bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"resilience"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig1..fig9, tab3..tab6, ablation-*) or 'all'")
	scale := flag.String("scale", "ci", "workload scale: tiny, ci or paper")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	workers := flag.Int("workers", 0, "experiment-engine worker count (0: RES_WORKERS env, else GOMAXPROCS; 1: sequential)")
	overlap := flag.Bool("overlap", false, "overlap halo exchange with interior SpMV in every distributed solve (false: RES_OVERLAP env, else fused)")
	list := flag.Bool("list", false, "list available experiments and exit")
	flag.Parse()

	if *list {
		for _, r := range resilience.Experiments() {
			fmt.Printf("%-18s %s\n", r.ID, r.Title)
		}
		return
	}

	var ids []string
	if *exp == "all" {
		for _, r := range resilience.Experiments() {
			ids = append(ids, r.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}

	failed := 0
	for _, id := range ids {
		start := time.Now()
		res, err := resilience.RunExperimentOpts(strings.TrimSpace(id), *scale,
			resilience.ExperimentOptions{Workers: *workers, Overlap: *overlap})
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			failed++
			continue
		}
		fmt.Println(res.String())
		fmt.Printf("(%s completed in %.1fs)\n\n", id, time.Since(start).Seconds())
		if *csvDir != "" {
			if err := writeCSVs(*csvDir, res); err != nil {
				fmt.Fprintf(os.Stderr, "writing CSV for %s: %v\n", id, err)
				failed++
			}
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func writeCSVs(dir string, res *resilience.ExperimentResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range res.Tables {
		name := fmt.Sprintf("%s_%d.csv", res.ID, i)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(t.CSV()), 0o644); err != nil {
			return err
		}
	}
	return nil
}
