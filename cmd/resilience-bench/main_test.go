package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"resilience"
)

func TestWriteCSVs(t *testing.T) {
	res, err := resilience.RunExperiment("fig1", "tiny")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := writeCSVs(dir, res); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig1_0.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Class") {
		t.Errorf("CSV header missing:\n%s", data)
	}
}

func TestExperimentListComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, r := range resilience.Experiments() {
		ids[r.ID] = true
	}
	for _, want := range []string{
		"fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"tab3", "tab4", "tab5", "tab6",
		"ablation-interval", "ablation-tol", "ablation-dvfs", "ablation-tmr",
		"ablation-pcg", "ablation-multilevel", "ablation-sdc",
	} {
		if !ids[want] {
			t.Errorf("experiment %q not registered", want)
		}
	}
}
