// Package resilience is the public API of this repository: an
// energy-aware resilient sparse linear solver toolkit reproducing
// Miao, Calhoun and Ge, "Energy Analysis and Optimization for Resilient
// Scalable Linear Systems" (IEEE CLUSTER 2018).
//
// It solves SPD systems with distributed Conjugate Gradient on a
// simulated cluster (message-passing runtime, virtual time, power
// metering, DVFS), injects hard/soft faults, recovers with the paper's
// schemes (checkpoint/restart, modular redundancy, forward recovery with
// localized CG construction and DVFS power management), and reports
// time-to-solution, energy-to-solution, average power and iteration
// counts.
//
// Quick start:
//
//	a := resilience.Laplacian2D(64)
//	b, _ := resilience.RHS(a)
//	rep, err := resilience.Solve(a, b, resilience.SolveOptions{
//		Scheme: "LI-DVFS",
//		Ranks:  16,
//		Faults: 5,
//	})
//
// The experiment harness regenerating every table and figure of the
// paper is exposed through Experiments and RunExperiment.
package resilience

import (
	"fmt"

	"resilience/internal/cluster"
	"resilience/internal/core"
	"resilience/internal/experiments"
	"resilience/internal/fault"
	"resilience/internal/matgen"
	"resilience/internal/obs"
	"resilience/internal/platform"
	"resilience/internal/solver"
	"resilience/internal/sparse"
	"resilience/internal/trace"
)

// SchedMode selects the simulator's rank execution mode: the goroutine
// runtime (the golden oracle) or the cooperative single-thread scheduler.
// The zero value defers to the RES_SCHED environment variable. Every
// result is byte-identical across modes; only host wall-clock changes.
type SchedMode = cluster.SchedMode

// SpMVLayout selects the local SpMV kernel storage layout (CSR or
// SELL-C-σ). The zero value defers to the RES_SPMV environment variable.
// Results and modeled costs are byte-identical across layouts.
type SpMVLayout = solver.SpMVLayout

// Scheduler modes and SpMV layouts, re-exported for SolveOptions /
// ExperimentOptions literals.
const (
	SchedAuto      = cluster.SchedAuto
	SchedGoroutine = cluster.SchedGoroutine
	SchedCoop      = cluster.SchedCoop

	SpMVAuto = solver.SpMVAuto
	SpMVCSR  = solver.SpMVCSR
	SpMVSELL = solver.SpMVSELL
)

// ParseSched parses a scheduler mode name: "auto", "goroutine" or "coop".
func ParseSched(s string) (SchedMode, error) { return cluster.ParseSched(s) }

// ParseSpMV parses an SpMV layout name: "auto", "csr" or "sell".
func ParseSpMV(s string) (SpMVLayout, error) { return solver.ParseSpMV(s) }

// Matrix is a sparse matrix in CSR format.
type Matrix = sparse.CSR

// Platform describes the simulated machine (cores, DVFS ladder, power
// curves, network and storage parameters).
type Platform = platform.Platform

// Report is the outcome of one resilient solve.
type Report = core.RunReport

// Fault is one injected fault event.
type Fault = fault.Fault

// Trace is a structured per-iteration event log (see NewTrace).
type Trace = trace.Trace

// NewTrace returns an empty trace to pass in SolveOptions.Trace.
func NewTrace() *Trace { return trace.New() }

// Recorder collects per-rank spans and counters during a solve (see
// NewRecorder and SolveOptions.Observer). Export with
// obs.WriteChromeTrace / obs.WriteMetricsCSV or read Metrics directly.
type Recorder = obs.Recorder

// NewRecorder returns an empty observability recorder to pass in
// SolveOptions.Observer. Recording never perturbs the solve: times,
// energies and iterates are byte-identical with or without it.
func NewRecorder() *Recorder { return obs.NewRecorder() }

// DefaultPlatform returns the paper's 8-node, 192-core cluster.
func DefaultPlatform() *Platform { return platform.Default() }

// Laplacian2D returns the 5-point stencil Poisson matrix on a g x g grid.
func Laplacian2D(g int) *Matrix { return matgen.Laplacian2D(g) }

// Laplacian3D returns the 7-point stencil Poisson matrix on a g³ grid.
func Laplacian3D(g int) *Matrix { return matgen.Laplacian3D(g) }

// RHS builds b = A*x_true for a smooth known x_true and returns both.
func RHS(a *Matrix) (b, xTrue []float64) { return matgen.RHS(a) }

// CatalogMatrix generates the named Table 3 analog ("Kuu", "crystm02",
// "nd24k", ...) at scale "tiny", "ci" or "paper".
func CatalogMatrix(name, scale string) (*Matrix, error) {
	sc, err := matgen.ParseScale(scale)
	if err != nil {
		return nil, err
	}
	spec, err := matgen.Lookup(name)
	if err != nil {
		return nil, err
	}
	return spec.Generate(sc), nil
}

// CatalogNames lists the Table 3 matrix names.
func CatalogNames() []string {
	var names []string
	for _, s := range matgen.Catalog() {
		names = append(names, s.Name)
	}
	return names
}

// SolveOptions configure a resilient solve.
type SolveOptions struct {
	// Scheme selects the recovery mechanism: FF, F0, FI, LI, LI-DVFS,
	// LI(LU), LSI, LSI-DVFS, LSI(QR), CR-M, CR-D, CR-2L, LCR, RD, TMR,
	// ESR.
	Scheme string
	// Ranks is the number of simulated MPI processes (default 16).
	Ranks int
	// Tol is the CG relative-residual target (default 1e-12, the paper's).
	Tol float64
	// MaxIters caps executed iterations (default 10x matrix dimension).
	MaxIters int

	// Faults > 0 injects that many faults evenly spaced over the
	// fault-free iteration count (the paper's Section 5.2 protocol).
	Faults int
	// MTBF > 0 instead injects Poisson faults with this mean time between
	// failures in virtual seconds (the Section 5.3 protocol). At most one
	// of Faults/MTBF may be set.
	MTBF float64
	// FaultClass defaults to SNF (single node failure).
	FaultClass fault.Class

	// CkptEvery sets a fixed checkpoint interval in iterations for CR
	// schemes; zero derives it from Young's formula and the fault rate.
	CkptEvery int
	// LocalTol is the LI/LSI localized construction tolerance (1e-6).
	LocalTol float64
	// Jacobi enables diagonal preconditioning of the distributed CG
	// (extension beyond the paper).
	Jacobi bool
	// Overlap hides the halo exchange behind the interior SpMV in every
	// distributed matrix-vector product. The iterates are bitwise-
	// identical either way; only the modeled time and energy change.
	Overlap bool
	// Sched selects the rank execution mode; zero defers to RES_SCHED.
	Sched SchedMode
	// SpMV selects the SpMV kernel layout; zero defers to RES_SPMV.
	SpMV SpMVLayout

	Platform *Platform
	// KeepPowerSegments retains the full power trace for profiles.
	KeepPowerSegments bool
	// Trace, when non-nil, receives structured per-iteration and fault/
	// recovery events (CSV-exportable; see NewTrace).
	Trace *Trace
	// Observer, when non-nil, records per-rank spans and counters (see
	// NewRecorder). Pair with KeepPowerSegments to get power counter
	// tracks in the Chrome trace export.
	Observer *Recorder
	Seed     int64
}

// Solve runs a resilient distributed CG solve of A x = b.
func Solve(a *Matrix, b []float64, opts SolveOptions) (*Report, error) {
	if opts.Ranks == 0 {
		opts.Ranks = 16
	}
	if opts.Scheme == "" {
		opts.Scheme = "FF"
	}
	spec, err := ParseScheme(opts.Scheme)
	if err != nil {
		return nil, err
	}
	spec.CkptEvery = opts.CkptEvery
	spec.LocalTol = opts.LocalTol
	if opts.Faults > 0 && opts.MTBF > 0 {
		return nil, fmt.Errorf("resilience: set either Faults or MTBF, not both")
	}

	cfg := core.RunConfig{
		A:            a,
		B:            b,
		Ranks:        opts.Ranks,
		Plat:         opts.Platform,
		Scheme:       spec,
		Tol:          opts.Tol,
		MaxIters:     opts.MaxIters,
		Jacobi:       opts.Jacobi,
		Overlap:      opts.Overlap,
		Sched:        opts.Sched,
		SpMV:         opts.SpMV,
		KeepSegments: opts.KeepPowerSegments,
		Trace:        opts.Trace,
		Obs:          opts.Observer,
		Seed:         opts.Seed,
	}

	if spec.Kind != core.FF && (opts.Faults > 0 || opts.MTBF > 0) {
		class := opts.FaultClass
		ranks := opts.Ranks
		seed := opts.Seed
		if opts.Faults > 0 {
			// The schedule is anchored on the fault-free iteration count.
			// The baseline run is internal scaffolding: keep it out of the
			// caller's trace and recorder.
			ff := cfg
			ff.Scheme = core.SchemeSpec{Kind: core.FF}
			ff.Trace = nil
			ff.Obs = nil
			ffRep, err := core.Run(ff)
			if err != nil {
				return nil, fmt.Errorf("resilience: fault-free baseline: %w", err)
			}
			nFaults := opts.Faults
			ffIters := ffRep.Iters
			cfg.InjectorFactory = func() fault.Injector {
				return fault.NewSchedule(nFaults, ffIters, ranks, class, seed)
			}
			if isCR(spec.Kind) && spec.CkptEvery == 0 {
				cfg.Scheme.CkptMTBF = ffRep.Time / float64(nFaults)
			}
		} else {
			mtbf := opts.MTBF
			cfg.InjectorFactory = func() fault.Injector {
				return fault.NewPoisson(mtbf, ranks, class, seed)
			}
			if isCR(spec.Kind) && spec.CkptEvery == 0 {
				cfg.Scheme.CkptMTBF = mtbf
			}
		}
	}
	return core.Run(cfg)
}

// isCR reports whether the scheme kind needs a checkpoint policy.
func isCR(k core.SchemeKind) bool {
	return k == core.CRM || k == core.CRD || k == core.CR2L || k == core.LCR
}

// Experiment is a registered paper experiment.
type Experiment = experiments.Runner

// ExperimentResult is an experiment's rendered output.
type ExperimentResult = experiments.Result

// Experiments lists every registered table/figure runner in paper order.
func Experiments() []Experiment { return experiments.All() }

// RunExperiment executes one experiment by id ("fig5", "tab6", ...) at
// scale "tiny", "ci" or "paper".
func RunExperiment(id, scale string) (*ExperimentResult, error) {
	return RunExperimentOpts(id, scale, ExperimentOptions{})
}

// RunExperimentWorkers is RunExperiment with an explicit worker count for
// the concurrent experiment engine. Zero means "use the RES_WORKERS
// environment variable, else GOMAXPROCS"; one forces sequential
// execution. The rendered output is byte-identical for any value.
func RunExperimentWorkers(id, scale string, workers int) (*ExperimentResult, error) {
	return RunExperimentOpts(id, scale, ExperimentOptions{Workers: workers})
}

// ExperimentOptions tune how an experiment executes without changing what
// it measures (except Overlap, which switches the modeled SpMV kernel).
type ExperimentOptions struct {
	// Workers bounds the engine's cell concurrency; zero means "use the
	// RES_WORKERS environment variable, else GOMAXPROCS".
	Workers int
	// Overlap runs every distributed solve with the halo exchange hidden
	// behind the interior SpMV; false defers to the RES_OVERLAP
	// environment variable, else the fused seed behavior.
	Overlap bool
	// Observe attaches a (discarded) observability recorder to every cell
	// solve; false defers to the RES_OBS environment variable. Output is
	// byte-identical either way — this exists to exercise the purity
	// guarantee under the full experiment matrix.
	Observe bool
	// Sched selects the rank execution mode for every cell solve; zero
	// defers to RES_SCHED. Tables are byte-identical across modes.
	Sched SchedMode
	// SpMV selects the SpMV kernel layout for every cell solve; zero
	// defers to RES_SPMV. Tables are byte-identical across layouts.
	SpMV SpMVLayout
	// Seed overrides the experiment fault-injection seed; zero keeps the
	// default (1, the seed behind every checked-in table). The effective
	// seed is echoed in ExperimentResult.Seed so reports are replayable.
	Seed int64
}

// RunExperimentOpts is RunExperiment with explicit engine options.
func RunExperimentOpts(id, scale string, opts ExperimentOptions) (*ExperimentResult, error) {
	sc, err := matgen.ParseScale(scale)
	if err != nil {
		return nil, err
	}
	r, ok := experiments.Get(id)
	if !ok {
		return nil, fmt.Errorf("resilience: unknown experiment %q", id)
	}
	cfg := experiments.Default(sc)
	cfg.Workers = opts.Workers
	cfg.Overlap = opts.Overlap
	cfg.Observe = opts.Observe
	cfg.Sched = opts.Sched
	cfg.SpMV = opts.SpMV
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	res, err := r.Run(cfg)
	if res != nil {
		res.Seed = cfg.Seed
	}
	return res, err
}
