package resilience_test

import (
	"fmt"

	"resilience"
)

// ExampleSolve solves a Poisson system with forward recovery under
// injected node failures.
func ExampleSolve() {
	a := resilience.Laplacian2D(24)
	b, _ := resilience.RHS(a)
	rep, err := resilience.Solve(a, b, resilience.SolveOptions{
		Scheme: "LI-DVFS",
		Ranks:  8,
		Faults: 3,
		Tol:    1e-10,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("converged: %t\n", rep.Converged)
	fmt.Printf("faults:    %d\n", len(rep.Faults))
	fmt.Printf("scheme:    %s\n", rep.Scheme)
	// Output:
	// converged: true
	// faults:    3
	// scheme:    LI-DVFS
}

// ExampleSolve_checkpointing uses memory checkpointing with a fixed
// interval.
func ExampleSolve_checkpointing() {
	a := resilience.Laplacian2D(16)
	b, _ := resilience.RHS(a)
	rep, err := resilience.Solve(a, b, resilience.SolveOptions{
		Scheme:    "CR-M",
		Ranks:     4,
		Faults:    2,
		CkptEvery: 20,
		Tol:       1e-9,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("converged: %t, checkpoints taken: %t\n",
		rep.Converged, rep.Checkpoints > 0)
	// Output:
	// converged: true, checkpoints taken: true
}

// ExampleParseScheme resolves scheme names case-insensitively.
func ExampleParseScheme() {
	spec, err := resilience.ParseScheme("li-dvfs")
	if err != nil {
		panic(err)
	}
	fmt.Println(spec.Name())
	// Output:
	// LI-DVFS
}

// ExampleCatalogMatrix generates a Table 3 analog.
func ExampleCatalogMatrix() {
	a, err := resilience.CatalogMatrix("Kuu", "tiny")
	if err != nil {
		panic(err)
	}
	fmt.Printf("rows=%d square=%t\n", a.Rows, a.Rows == a.Cols)
	// Output:
	// rows=512 square=true
}
